// Differential parity fuzz over the pluggable all-reduce algorithms:
// every schedule (ring, tree, hierarchical), every world size 1-8, and
// tensor shapes the chunk geometry must survive — empty, single
// element, lengths not divisible by the rank count, and payloads larger
// than the default gradient bucket — all checked against a sequential
// rank-order reference reduction. Separate cases pin the bitwise
// properties the mirrored strategy relies on: determinism across runs
// for a fixed rank count, mean == sum * scale with the scale folded
// exactly once, and async == blocking.
//
// Note: the tests request an algorithm through GroupOptions, but
// DMIS_COMM_ALGO (when set by a verify.sh environment sweep) wins by
// design. Every property here is algorithm-agnostic, so the suite is
// still meaningful under an env override — it just exercises the same
// schedule three times.
#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "tensor/rng.hpp"

namespace dmis::comm {
namespace {

constexpr AllReduceAlgo kAllAlgos[] = {
    AllReduceAlgo::kRing, AllReduceAlgo::kTree, AllReduceAlgo::kHier};

/// Per-rank pseudo-random inputs on a coarse 1/64 grid, so the serial
/// reference sum is exact regardless of accumulation order.
std::vector<std::vector<float>> make_inputs(int world, size_t len,
                                            uint64_t seed) {
  std::vector<std::vector<float>> inputs(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    Rng rng(seed + static_cast<uint64_t>(r) * 977 + 13);
    auto& buf = inputs[static_cast<size_t>(r)];
    buf.resize(len);
    for (auto& v : buf) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
      v = std::round(v * 64.0F) / 64.0F;
    }
  }
  return inputs;
}

/// Sequential rank-order reference: expected[i] = sum_r inputs[r][i].
std::vector<double> reference_sum(
    const std::vector<std::vector<float>>& inputs) {
  if (inputs.empty()) return {};
  std::vector<double> expected(inputs[0].size(), 0.0);
  for (const auto& buf : inputs) {
    for (size_t i = 0; i < buf.size(); ++i) expected[i] += buf[i];
  }
  return expected;
}

/// Runs one blocking all_reduce_sum (or _mean / async variant) over a
/// fresh group and returns every rank's output buffer.
std::vector<std::vector<float>> run_all_reduce(
    AllReduceAlgo algo, int world, int ranks_per_node, size_t len,
    uint64_t seed, bool mean = false, bool async = false) {
  GroupOptions opts;
  opts.algo = algo;
  opts.ranks_per_node = ranks_per_node;
  auto comms = make_group(world, opts);
  auto bufs = make_inputs(world, len, seed);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& buf = bufs[static_cast<size_t>(r)];
      auto& comm = comms[static_cast<size_t>(r)];
      if (async) {
        AsyncRequest req = comm.all_reduce_sum_async(buf);
        req.wait();
      } else if (mean) {
        comm.all_reduce_mean(buf);
      } else {
        comm.all_reduce_sum(buf);
      }
    });
  }
  for (auto& t : threads) t.join();
  return bufs;
}

void expect_matches_reference(const std::vector<std::vector<float>>& outs,
                              const std::vector<double>& expected,
                              const std::string& what) {
  for (size_t r = 0; r < outs.size(); ++r) {
    ASSERT_EQ(outs[r].size(), expected.size()) << what << " rank " << r;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(outs[r][i], expected[i], 1e-4)
          << what << " rank=" << r << " i=" << i;
    }
  }
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

std::string case_name(AllReduceAlgo algo, int world, int rpn, size_t len) {
  return std::string(all_reduce_algo_name(algo)) + " world=" +
         std::to_string(world) + " rpn=" + std::to_string(rpn) +
         " len=" + std::to_string(len);
}

// Every algorithm, every world size 1-8, edge-shaped buffers: empty,
// single element, fewer elements than ranks, and a length coprime with
// every world size. ranks_per_node=3 makes the node groups ragged for
// most worlds (the hierarchical algorithm's hard case).
TEST(AllReduceAlgoParity, MatchesSerialReferenceAcrossWorldsAndShapes) {
  for (const AllReduceAlgo algo : kAllAlgos) {
    for (int world = 1; world <= 8; ++world) {
      for (const size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{131}}) {
        const auto inputs = make_inputs(world, len, /*seed=*/91);
        const auto expected = reference_sum(inputs);
        const auto outs = run_all_reduce(algo, world, /*ranks_per_node=*/3,
                                         len, /*seed=*/91);
        expect_matches_reference(outs, expected,
                                 case_name(algo, world, 3, len));
      }
    }
  }
}

// Payloads past the 1 MiB gradient-bucket size (262,144 floats), with a
// length chosen to not divide by any world size used. world=6 with
// ranks_per_node=4 gives ragged node groups of 4 + 2.
TEST(AllReduceAlgoParity, LargeBuffersBeyondBucketSize) {
  constexpr size_t kLen = 300001;  // > 1 MiB of floats, prime
  for (const AllReduceAlgo algo : kAllAlgos) {
    for (const int world : {4, 6}) {
      const auto inputs = make_inputs(world, kLen, /*seed=*/7);
      const auto expected = reference_sum(inputs);
      const auto outs =
          run_all_reduce(algo, world, /*ranks_per_node=*/4, kLen, /*seed=*/7);
      expect_matches_reference(outs, expected,
                               case_name(algo, world, 4, kLen));
    }
  }
}

// For a fixed rank count every algorithm must be bitwise deterministic:
// two runs over identical inputs produce identical float bits on every
// rank (the mirrored strategy's replica-consistency invariant).
TEST(AllReduceAlgoParity, BitwiseDeterministicAcrossRuns) {
  for (const AllReduceAlgo algo : kAllAlgos) {
    const auto a = run_all_reduce(algo, /*world=*/6, /*ranks_per_node=*/2,
                                  /*len=*/4097, /*seed=*/42);
    const auto b = run_all_reduce(algo, /*world=*/6, /*ranks_per_node=*/2,
                                  /*len=*/4097, /*seed=*/42);
    for (size_t r = 0; r < a.size(); ++r) {
      EXPECT_TRUE(bitwise_equal(a[r], b[r]))
          << case_name(algo, 6, 2, 4097) << " rank " << r;
    }
    // All ranks end with the same bits — mirrored replicas stay mirrored.
    for (size_t r = 1; r < a.size(); ++r) {
      EXPECT_TRUE(bitwise_equal(a[0], a[r]))
          << case_name(algo, 6, 2, 4097) << " rank " << r << " vs rank 0";
    }
  }
}

// all_reduce_mean must equal all_reduce_sum followed by one scalar
// multiply, bit for bit: every schedule folds the scale into the final
// accumulation of each element exactly once.
TEST(AllReduceAlgoParity, MeanIsSumScaledExactlyOnce) {
  constexpr int kWorld = 5;
  const float inv = 1.0F / static_cast<float>(kWorld);
  for (const AllReduceAlgo algo : kAllAlgos) {
    const auto sum = run_all_reduce(algo, kWorld, /*ranks_per_node=*/2,
                                    /*len=*/513, /*seed=*/3, /*mean=*/false);
    const auto mean = run_all_reduce(algo, kWorld, /*ranks_per_node=*/2,
                                     /*len=*/513, /*seed=*/3, /*mean=*/true);
    for (size_t r = 0; r < sum.size(); ++r) {
      std::vector<float> scaled = sum[r];
      for (float& v : scaled) v *= inv;
      EXPECT_TRUE(bitwise_equal(scaled, mean[r]))
          << case_name(algo, kWorld, 2, 513) << " rank " << r;
    }
  }
}

// The async worker path runs the same strategy through the same
// rendezvous, so it must produce the same bits as the blocking path.
TEST(AllReduceAlgoParity, AsyncPathMatchesBlockingBitwise) {
  for (const AllReduceAlgo algo : kAllAlgos) {
    const auto blocking =
        run_all_reduce(algo, /*world=*/4, /*ranks_per_node=*/2,
                       /*len=*/2048, /*seed=*/11, /*mean=*/false);
    const auto async =
        run_all_reduce(algo, /*world=*/4, /*ranks_per_node=*/2,
                       /*len=*/2048, /*seed=*/11, /*mean=*/false,
                       /*async=*/true);
    for (size_t r = 0; r < blocking.size(); ++r) {
      EXPECT_TRUE(bitwise_equal(blocking[r], async[r]))
          << case_name(algo, 4, 2, 2048) << " rank " << r;
    }
  }
}

// Randomized sweep: (world, algorithm, topology, length) drawn from a
// fixed-seed generator, always compared to the serial reference. The
// first iteration pins the bucket-boundary straddle explicitly.
TEST(AllReduceAlgoParity, RandomizedFuzzAgainstReference) {
  std::mt19937 rng(1234);
  const int rpns[] = {0, 1, 2, 3, 5};
  for (int iter = 0; iter < 32; ++iter) {
    const int world = 1 + static_cast<int>(rng() % 8);
    const AllReduceAlgo algo = kAllAlgos[rng() % 3];
    const int rpn = rpns[rng() % 5];
    size_t len;
    if (iter == 0) {
      len = 262147;  // one past the 1 MiB bucket, and prime
    } else if (rng() % 2 == 0) {
      len = rng() % 96;
    } else {
      len = rng() % 300000;
    }
    const uint64_t seed = 1000 + static_cast<uint64_t>(iter);
    const auto inputs = make_inputs(world, len, seed);
    const auto expected = reference_sum(inputs);
    const auto outs = run_all_reduce(algo, world, rpn, len, seed);
    expect_matches_reference(
        outs, expected,
        "iter=" + std::to_string(iter) + " " +
            case_name(algo, world, rpn, len));
  }
}

}  // namespace
}  // namespace dmis::comm
