// Nonblocking collectives: correctness of the AsyncRequest/wait API,
// interleaving with blocking collectives on the same group (routed
// through the comm workers), out-of-order waits, group launches, and a
// comm-worker fault surfacing as a typed error instead of a hang. The
// whole file runs under TSan in tools/verify.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "common/fault_injector.hpp"
#include "obs/metrics.hpp"

namespace dmis::comm {
namespace {

void run_group(int size,
               const std::function<void(int, Communicator&)>& body) {
  auto comms = make_group(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] { body(r, comms[static_cast<size_t>(r)]); });
  }
  for (auto& t : threads) t.join();
}

class AsyncAllReduceRanks : public ::testing::TestWithParam<int> {};

TEST_P(AsyncAllReduceRanks, MatchesBlockingResult) {
  const int ranks = GetParam();
  run_group(ranks, [ranks](int rank, Communicator& comm) {
    std::vector<float> buf(129, static_cast<float>(rank + 1));
    AsyncRequest req = comm.all_reduce_sum_async(buf);
    req.wait();
    const float expect =
        static_cast<float>(ranks * (ranks + 1)) / 2.0F;  // 1+2+...+n
    for (float v : buf) ASSERT_FLOAT_EQ(v, expect);
    EXPECT_TRUE(req.done());
  });
}

TEST_P(AsyncAllReduceRanks, InterleavedAsyncAndBlockingCollectives) {
  const int ranks = GetParam();
  run_group(ranks, [ranks](int rank, Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      // async -> blocking allreduce -> blocking broadcast -> wait: the
      // blocking calls must serialize behind the in-flight async op on
      // this rank's worker queue or the barriers would cross-match.
      std::vector<float> a(57, static_cast<float>(rank));
      AsyncRequest req = comm.all_reduce_sum_async(a);

      std::vector<float> b(13, 1.0F);
      comm.all_reduce_mean(b);
      for (float v : b) ASSERT_FLOAT_EQ(v, 1.0F);

      std::vector<float> c(5, static_cast<float>(rank + round));
      comm.broadcast(c, round % ranks);
      for (float v : c) {
        ASSERT_FLOAT_EQ(v, static_cast<float>(round % ranks + round));
      }

      req.wait();
      const float expect =
          static_cast<float>(ranks * (ranks - 1)) / 2.0F;  // 0+1+...+n-1
      for (float v : a) ASSERT_FLOAT_EQ(v, expect);
    }
  });
}

TEST_P(AsyncAllReduceRanks, FusedScaleMatchesSumThenScale) {
  // The scale parameter rides the ring (one multiply as each chunk's
  // reduction completes) — bitwise identical to summing and scaling in
  // a separate pass, the invariant GradBucketer's unpack relies on.
  const int ranks = GetParam();
  const float scale = 0.25F;
  run_group(ranks, [scale](int rank, Communicator& comm) {
    std::vector<float> fused(301);
    std::iota(fused.begin(), fused.end(), static_cast<float>(rank));
    std::vector<float> plain = fused;

    AsyncRequest req = comm.all_reduce_sum_async(
        std::span<float>(fused), scale);
    req.wait();
    AsyncRequest req2 = comm.all_reduce_sum_async(std::span<float>(plain));
    req2.wait();
    for (size_t i = 0; i < plain.size(); ++i) {
      ASSERT_EQ(fused[i], plain[i] * scale) << "elem " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsyncAllReduceRanks,
                         ::testing::Values(1, 2, 3, 4, 5, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(AsyncCommTest, OutOfOrderWait) {
  run_group(3, [](int rank, Communicator& comm) {
    std::vector<float> a(8, 1.0F), b(16, 2.0F), c(24, 3.0F);
    AsyncRequest ra = comm.all_reduce_sum_async(a);
    AsyncRequest rb = comm.all_reduce_sum_async(b);
    AsyncRequest rc = comm.all_reduce_sum_async(c);
    (void)rank;
    rc.wait();  // waits in reverse submission order
    ra.wait();
    rb.wait();
    for (float v : a) ASSERT_FLOAT_EQ(v, 3.0F);
    for (float v : b) ASSERT_FLOAT_EQ(v, 6.0F);
    for (float v : c) ASSERT_FLOAT_EQ(v, 9.0F);
  });
}

TEST(AsyncCommTest, GroupLaunchReducesEveryBufferUnderOneHandle) {
  run_group(4, [](int rank, Communicator& comm) {
    std::vector<float> a(31, static_cast<float>(rank));
    std::vector<float> b(7, 1.0F);
    std::vector<float> c(1025, 2.0F);
    AsyncRequest req = comm.all_reduce_sum_async(
        {std::span<float>(a), std::span<float>(b), std::span<float>(c)});
    req.wait();
    for (float v : a) ASSERT_FLOAT_EQ(v, 6.0F);  // 0+1+2+3
    for (float v : b) ASSERT_FLOAT_EQ(v, 4.0F);
    for (float v : c) ASSERT_FLOAT_EQ(v, 8.0F);
  });
}

TEST(AsyncCommTest, ManyRequestsInFlightStayExact) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 50;
  constexpr int kInFlight = 6;
  run_group(kRanks, [](int rank, Communicator& comm) {
    const std::vector<size_t> sizes{872, 16, 1736, 3, 64, 409};
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::vector<float>> bufs;
      std::vector<AsyncRequest> reqs;
      for (int k = 0; k < kInFlight; ++k) {
        bufs.emplace_back(sizes[static_cast<size_t>(k)],
                          static_cast<float>(rank + k));
        reqs.push_back(comm.all_reduce_sum_async(bufs.back()));
      }
      wait_all(reqs);
      for (int k = 0; k < kInFlight; ++k) {
        // Sum over ranks r of (r + k) = (0+1+2+3) + 4k.
        const float expect = 6.0F + 4.0F * static_cast<float>(k);
        for (float v : bufs[static_cast<size_t>(k)]) {
          ASSERT_FLOAT_EQ(v, expect);
        }
      }
    }
  });
}

TEST(AsyncCommTest, InflightGaugeReturnsToZeroAfterDrain) {
  run_group(2, [](int, Communicator& comm) {
    std::vector<float> buf(64, 1.0F);
    comm.all_reduce_sum_async(buf).wait();
  });
  const auto& gauge =
      obs::MetricsRegistry::instance().gauge("comm.async.inflight");
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

// A fault inside a comm-worker task must surface from wait() as the
// typed FaultInjected error on every rank, leave nobody blocked (the
// point fires before the barrier is touched, like the sync path), and
// leave the group reusable once disarmed.
TEST(AsyncCommFaultTest, WorkerFaultSurfacesAsTypedErrorNotHang) {
  auto& faults = common::FaultInjector::instance();
  faults.reset();
  faults.arm_probability("comm.all_reduce", 1.0);

  constexpr int kRanks = 3;
  std::atomic<int> failures{0};
  auto comms = make_group(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(128, static_cast<float>(r + 1));
      AsyncRequest req =
          comms[static_cast<size_t>(r)].all_reduce_sum_async(buf);
      try {
        req.wait();
      } catch (const common::FaultInjected&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), kRanks);
  EXPECT_EQ(faults.fires("comm.all_reduce"), kRanks);

  // Disarm and prove the workers (and the barrier) recovered.
  faults.reset();
  threads.clear();
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(128, static_cast<float>(r + 1));
      comms[static_cast<size_t>(r)].all_reduce_sum_async(buf).wait();
      for (const float v : buf) EXPECT_FLOAT_EQ(v, 6.0F);  // 1+2+3
    });
  }
  for (auto& t : threads) t.join();
}

TEST(AsyncCommTest, EmptyRequestIsInvalidAndWaitThrows) {
  AsyncRequest req;
  EXPECT_FALSE(req.valid());
  EXPECT_THROW(req.wait(), InvalidArgument);
}

TEST(AsyncCommTest, DroppingGroupWithUnwaitedRequestsCompletesThem) {
  // Submit on every rank, never wait, destroy the group: the context
  // destructor must drain the queues (the matching submissions exist on
  // all ranks) instead of hanging or crashing.
  std::vector<std::vector<float>> bufs(3, std::vector<float>(32, 1.0F));
  {
    auto comms = make_group(3);
    std::vector<std::thread> threads;
    for (int r = 0; r < 3; ++r) {
      threads.emplace_back([&, r] {
        comms[static_cast<size_t>(r)].all_reduce_sum_async(
            bufs[static_cast<size_t>(r)]);
      });
    }
    for (auto& t : threads) t.join();
  }  // group (and context) destroyed here
  for (const auto& buf : bufs) {
    for (float v : buf) EXPECT_FLOAT_EQ(v, 3.0F);
  }
}

}  // namespace
}  // namespace dmis::comm
