// Failure semantics of the collective group: per-collective deadlines,
// the poison pill, the health table, and the survivor agreement round.
#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injector.hpp"

namespace dmis::comm {
namespace {

class CommFailureTest : public ::testing::Test {
 protected:
  void SetUp() override { common::FaultInjector::instance().reset(); }
  void TearDown() override { common::FaultInjector::instance().reset(); }
};

TEST_F(CommFailureTest, KindNames) {
  EXPECT_STREQ(comm_error_kind_name(CommErrorKind::kTimeout), "timeout");
  EXPECT_STREQ(comm_error_kind_name(CommErrorKind::kPeerFailed),
               "peer_failed");
  EXPECT_STREQ(comm_error_kind_name(CommErrorKind::kAborted), "aborted");
}

TEST_F(CommFailureTest, FreshGroupIsHealthyAndUnpoisoned) {
  auto comms = make_group(3, /*timeout_ms=*/250);
  EXPECT_EQ(comms[0].timeout_ms(), 250);
  EXPECT_FALSE(comms[0].aborted());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(comms[1].health(r), RankHealth::kHealthy);
  }
}

// A rank whose peers never show up must not block forever: its own
// deadline fires, it throws the typed kTimeout, and the missing peer is
// recorded as a suspect in the health table.
TEST_F(CommFailureTest, DeadlineTurnsMissingPeerIntoTimeout) {
  auto comms = make_group(2, /*timeout_ms=*/150);
  std::vector<float> buf(8, 1.0F);
  bool timed_out = false;
  try {
    comms[0].all_reduce_sum(buf);  // rank 1 never calls
  } catch (const CommError& e) {
    timed_out = true;
    EXPECT_EQ(e.kind(), CommErrorKind::kTimeout);
  }
  EXPECT_TRUE(timed_out);
  EXPECT_TRUE(comms[0].aborted());
  EXPECT_EQ(comms[0].health(1), RankHealth::kSuspect);
  EXPECT_EQ(comms[0].health(0), RankHealth::kHealthy);

  // The group is poisoned: the late rank fails fast with kPeerFailed
  // instead of waiting for a rendezvous that can never complete.
  bool poisoned = false;
  try {
    comms[1].all_reduce_sum(buf);
  } catch (const CommError& e) {
    poisoned = true;
    EXPECT_EQ(e.kind(), CommErrorKind::kPeerFailed);
  }
  EXPECT_TRUE(poisoned);
}

// abort() is the poison pill: every rank blocked in a rendezvous wakes
// with a typed error instead of deadlocking (no deadline needed).
TEST_F(CommFailureTest, AbortWakesBlockedRanks) {
  auto comms = make_group(3);  // no deadline: pre-failure-semantics mode
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(16, 1.0F);
      try {
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      } catch (const CommError& e) {
        EXPECT_EQ(e.kind(), CommErrorKind::kPeerFailed);
        errors.fetch_add(1);
      }
    });
  }
  // Give ranks 0/1 a moment to block in the ring, then kill rank 2.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  comms[2].abort("simulated crash");
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 2);
  EXPECT_TRUE(comms[0].aborted());
  EXPECT_EQ(comms[0].health(2), RankHealth::kDead);
}

// Survivors must leave the agreement round with the *same* dead-set,
// and the dead rank itself must be fenced out with kAborted.
TEST_F(CommFailureTest, AgreementSealsIdenticalDeadSet) {
  auto comms = make_group(4);
  comms[3].abort("rank 3 going down");
  std::vector<std::vector<int>> sealed(3);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      sealed[static_cast<size_t>(r)] =
          comms[static_cast<size_t>(r)].agree_on_failures(/*grace_ms=*/500);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sealed[static_cast<size_t>(r)], std::vector<int>{3})
        << "rank " << r;
  }
  // The condemned rank arrives after the seal: fenced out.
  bool fenced = false;
  try {
    comms[3].agree_on_failures(100);
  } catch (const CommError& e) {
    fenced = true;
    EXPECT_EQ(e.kind(), CommErrorKind::kAborted);
  }
  EXPECT_TRUE(fenced);
}

// A healthy rank that never joins the round is condemned once the grace
// deadline passes, so one silent peer cannot wedge recovery.
TEST_F(CommFailureTest, AgreementGraceCondemnsSilentRank) {
  auto comms = make_group(3);
  comms[0].abort("rank 0 dead");
  // Rank 2 never calls agree_on_failures; rank 1 waits out the grace.
  const std::vector<int> dead = comms[1].agree_on_failures(/*grace_ms=*/100);
  EXPECT_EQ(dead, (std::vector<int>{0, 2}));
  EXPECT_EQ(comms[1].health(2), RankHealth::kDead);
}

TEST_F(CommFailureTest, AgreementRequiresPoisonedGroup) {
  auto comms = make_group(2);
  EXPECT_THROW(comms[0].agree_on_failures(10), InvalidArgument);
}

// A rank that loses a collective at entry (injected fault) and moves on
// desynchronizes from its peers. The rendezvous sequence check must
// poison the group with kPeerFailed instead of silently pairing
// mismatched collectives.
TEST_F(CommFailureTest, CollectiveSequenceMismatchPoisonsGroup) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.broadcast.r0", 1);
  auto comms = make_group(2);
  std::atomic<int> comm_errors{0};

  std::thread peer([&] {
    std::vector<float> buf(6, 2.0F);
    try {
      comms[1].broadcast(buf, /*root=*/1);
    } catch (const CommError& e) {
      EXPECT_EQ(e.kind(), CommErrorKind::kPeerFailed);
      comm_errors.fetch_add(1);
    }
  });

  std::vector<float> buf(6, 1.0F);
  EXPECT_THROW(comms[0].broadcast(buf, 1), common::FaultInjected);
  // Rank 0 skipped the broadcast and moved on. Its first barrier pairs
  // up with the broadcast's first rendezvous (same op count), but the
  // *second* one arrives one op ahead and trips the sequence check.
  comms[0].barrier();
  try {
    comms[0].barrier();
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommErrorKind::kPeerFailed);
    comm_errors.fetch_add(1);
  }
  peer.join();
  EXPECT_EQ(comm_errors.load(), 2);
  EXPECT_TRUE(comms[0].aborted());
}

// A hung (not crashed) rank is exactly what deadlines exist for: the
// waiting rank times out and poisons the group; the hung rank finds the
// poison when it finally wakes up.
TEST_F(CommFailureTest, HungRankDetectedByDeadline) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r1", 1);
  faults.set_action_hang("comm.all_reduce.r1", /*auto_release_ms=*/700);

  auto comms = make_group(2, /*timeout_ms=*/200);
  std::atomic<bool> hung_rank_failed{false};
  std::thread hung([&] {
    std::vector<float> buf(4, 1.0F);
    try {
      comms[1].all_reduce_sum(buf);  // parks ~700ms, then finds poison
    } catch (const CommError&) {
      hung_rank_failed.store(true);
    }
  });

  std::vector<float> buf(4, 1.0F);
  bool timed_out = false;
  try {
    comms[0].all_reduce_sum(buf);
  } catch (const CommError& e) {
    timed_out = true;
    EXPECT_EQ(e.kind(), CommErrorKind::kTimeout);
  }
  hung.join();
  EXPECT_TRUE(timed_out);
  EXPECT_TRUE(hung_rank_failed.load());
  EXPECT_NE(comms[0].health(1), RankHealth::kHealthy);
}

// A slow rank (delay fault) inside the deadline is *not* a failure: the
// collective completes and the health table stays clean.
TEST_F(CommFailureTest, DelayedRankWithinDeadlineSucceeds) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r1", 1);
  faults.set_action_delay("comm.all_reduce.r1", 100);

  auto comms = make_group(2, /*timeout_ms=*/5000);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(4, static_cast<float>(r + 1));
      comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      for (const float v : buf) EXPECT_FLOAT_EQ(v, 3.0F);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(comms[0].aborted());
  EXPECT_EQ(comms[0].health(0), RankHealth::kHealthy);
  EXPECT_EQ(comms[0].health(1), RankHealth::kHealthy);
}

// The async path surfaces the same typed failures from wait(): a rank
// killed at collective entry leaves its peers' deadlines to fire, and
// every error comes out of AsyncRequest::wait, not the submitting call.
TEST_F(CommFailureTest, AsyncCollectivesSurfaceTypedFailures) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r2", 1);

  constexpr int kRanks = 3;
  auto comms = make_group(kRanks, /*timeout_ms=*/300);
  std::atomic<int> injected{0};
  std::atomic<int> comm_errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(32, static_cast<float>(r));
      AsyncRequest req =
          comms[static_cast<size_t>(r)].all_reduce_sum_async(buf);
      try {
        req.wait();
      } catch (const common::FaultInjected&) {
        injected.fetch_add(1);
      } catch (const CommError&) {
        comm_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(injected.load(), 1);      // the killed rank
  EXPECT_EQ(comm_errors.load(), 2);   // its peers (timeout / poisoned)
  EXPECT_TRUE(comms[0].aborted());
  EXPECT_NE(comms[0].health(2), RankHealth::kHealthy);

  // Later async submissions on the poisoned group fail fast.
  std::vector<float> buf(8, 1.0F);
  AsyncRequest req = comms[0].all_reduce_sum_async(buf);
  EXPECT_THROW(req.wait(), CommError);
}

// The failure machinery is supposed to be algorithm-agnostic: every
// schedule runs over the same deadline-aware rendezvous, so rank loss,
// timeouts and the poison pill must behave identically under the tree
// and hierarchical algorithms. Parameterized mirror of the key cases
// above, on a 4-rank two-node (ranks_per_node=2) group so the
// hierarchical schedule really runs its intra/leader/broadcast phases.
class CommFailureAlgoTest : public ::testing::TestWithParam<AllReduceAlgo> {
 protected:
  void SetUp() override { common::FaultInjector::instance().reset(); }
  void TearDown() override { common::FaultInjector::instance().reset(); }

  std::vector<Communicator> group(int size, int64_t timeout_ms) {
    GroupOptions opts;
    opts.timeout_ms = timeout_ms;
    opts.algo = GetParam();
    opts.ranks_per_node = 2;
    return make_group(size, opts);
  }
};

// Ranks 0-2 enter the collective; rank 3 never shows up. Whatever the
// schedule, every present rank must surface a typed error (the first
// deadline to fire poisons the group for the rest) — no deadlock.
TEST_P(CommFailureAlgoTest, DeadlineTurnsMissingPeerIntoTypedError) {
  auto comms = group(4, /*timeout_ms=*/200);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(64, 1.0F);
      try {
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      } catch (const CommError& e) {
        EXPECT_TRUE(e.kind() == CommErrorKind::kTimeout ||
                    e.kind() == CommErrorKind::kPeerFailed)
            << comm_error_kind_name(e.kind());
        errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 3);
  EXPECT_TRUE(comms[0].aborted());
  EXPECT_NE(comms[0].health(3), RankHealth::kHealthy);
}

// abort() must wake ranks blocked mid-schedule — including inside the
// tree's halving exchanges and the hierarchical leader phase.
TEST_P(CommFailureAlgoTest, AbortWakesRanksBlockedInSchedule) {
  auto comms = group(4, /*timeout_ms=*/0);  // no deadline: poison only
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(256, 1.0F);
      try {
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      } catch (const CommError& e) {
        EXPECT_EQ(e.kind(), CommErrorKind::kPeerFailed);
        errors.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  comms[3].abort("simulated crash");
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 3);
  EXPECT_TRUE(comms[0].aborted());
  EXPECT_EQ(comms[0].health(3), RankHealth::kDead);
}

// A hung (not crashed) rank: survivors' deadlines fire; the hung rank
// wakes into the poisoned group. Identical contract for every schedule.
TEST_P(CommFailureAlgoTest, HungRankDetectedByDeadline) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r1", 1);
  faults.set_action_hang("comm.all_reduce.r1", /*auto_release_ms=*/700);

  auto comms = group(4, /*timeout_ms=*/200);
  std::atomic<int> survivor_errors{0};
  std::atomic<bool> hung_rank_failed{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(32, 1.0F);
      try {
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      } catch (const CommError&) {
        if (r == 1) {
          hung_rank_failed.store(true);
        } else {
          survivor_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(survivor_errors.load(), 3);
  EXPECT_TRUE(hung_rank_failed.load());
  EXPECT_TRUE(comms[0].aborted());
  EXPECT_NE(comms[0].health(1), RankHealth::kHealthy);
}

// Async submissions surface the same typed failures from wait() under
// every algorithm, and the poisoned group keeps failing fast.
TEST_P(CommFailureAlgoTest, AsyncCollectivesSurfaceTypedFailures) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r2", 1);

  auto comms = group(4, /*timeout_ms=*/300);
  std::atomic<int> injected{0};
  std::atomic<int> comm_errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(32, static_cast<float>(r));
      AsyncRequest req =
          comms[static_cast<size_t>(r)].all_reduce_sum_async(buf);
      try {
        req.wait();
      } catch (const common::FaultInjected&) {
        injected.fetch_add(1);
      } catch (const CommError&) {
        comm_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(injected.load(), 1);
  EXPECT_EQ(comm_errors.load(), 3);
  EXPECT_TRUE(comms[0].aborted());

  std::vector<float> buf(8, 1.0F);
  AsyncRequest req = comms[0].all_reduce_sum_async(buf);
  EXPECT_THROW(req.wait(), CommError);
}

// Survivors still seal an identical dead-set after an abort that
// happened under a non-ring schedule.
TEST_P(CommFailureAlgoTest, AgreementSealsIdenticalDeadSet) {
  auto comms = group(4, /*timeout_ms=*/0);
  comms[3].abort("rank 3 going down");
  std::vector<std::vector<int>> sealed(3);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      sealed[static_cast<size_t>(r)] =
          comms[static_cast<size_t>(r)].agree_on_failures(/*grace_ms=*/500);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sealed[static_cast<size_t>(r)], std::vector<int>{3})
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, CommFailureAlgoTest,
    ::testing::Values(AllReduceAlgo::kRing, AllReduceAlgo::kTree,
                      AllReduceAlgo::kHier),
    [](const ::testing::TestParamInfo<AllReduceAlgo>& info) {
      return std::string(all_reduce_algo_name(info.param));
    });

TEST_F(CommFailureTest, RejectsMalformedTimeoutEnv) {
  ::setenv("DMIS_COMM_TIMEOUT_MS", "soon", 1);
  EXPECT_THROW(make_group(2), InvalidArgument);
  ::setenv("DMIS_COMM_TIMEOUT_MS", "250", 1);
  auto comms = make_group(2);
  EXPECT_EQ(comms[0].timeout_ms(), 250);
  ::unsetenv("DMIS_COMM_TIMEOUT_MS");
}

}  // namespace
}  // namespace dmis::comm
