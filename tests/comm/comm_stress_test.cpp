// Concurrency stress for the collectives: multiple independent groups
// in flight, repeated collectives on one group, and mixed-operation
// sequences — the access patterns MirroredStrategy and the allreduce
// bench actually generate.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"

namespace dmis::comm {
namespace {

TEST(CommStressTest, ManySequentialAllreducesStayExact) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 200;
  auto comms = make_group(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(64);
      for (int round = 0; round < kRounds; ++round) {
        // Each round: rank contributes (round + rank); the sum over
        // ranks is kRanks*round + 0+1+2+3.
        std::fill(buf.begin(), buf.end(),
                  static_cast<float>(round + r));
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
        const float expect = static_cast<float>(kRanks * round + 6);
        for (float v : buf) ASSERT_FLOAT_EQ(v, expect);
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(CommStressTest, IndependentGroupsDoNotInterfere) {
  // Two groups of different sizes run allreduces concurrently; each
  // must see only its own members' contributions.
  auto group_a = make_group(3);
  auto group_b = make_group(5);
  std::vector<std::thread> threads;

  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < 50; ++round) {
        std::vector<float> buf(16, 1.0F);
        group_a[static_cast<size_t>(r)].all_reduce_sum(buf);
        for (float v : buf) ASSERT_FLOAT_EQ(v, 3.0F);
      }
    });
  }
  for (int r = 0; r < 5; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < 50; ++round) {
        std::vector<float> buf(16, 1.0F);
        group_b[static_cast<size_t>(r)].all_reduce_sum(buf);
        for (float v : buf) ASSERT_FLOAT_EQ(v, 5.0F);
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(CommStressTest, MixedCollectiveSequence) {
  // The MirroredStrategy pattern: per "step", one allreduce per
  // parameter tensor (different sizes), then a broadcast.
  constexpr int kRanks = 3;
  auto comms = make_group(kRanks);
  const std::vector<size_t> tensor_sizes{872, 16, 1736, 16, 9};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      Communicator& comm = comms[static_cast<size_t>(r)];
      for (int step = 0; step < 20; ++step) {
        for (size_t size : tensor_sizes) {
          std::vector<float> grad(size, static_cast<float>(r + 1));
          comm.all_reduce_mean(grad);
          for (float v : grad) ASSERT_FLOAT_EQ(v, 2.0F);  // mean of 1,2,3
        }
        std::vector<float> flag(1, static_cast<float>(r));
        comm.broadcast(flag, 0);
        ASSERT_FLOAT_EQ(flag[0], 0.0F);
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(CommStressTest, LargePayloadAllreduce) {
  // The real U-Net gradient payload size, several rounds.
  constexpr int kRanks = 2;
  constexpr size_t kPayload = 409657;
  auto comms = make_group(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(kPayload);
      for (int round = 0; round < 3; ++round) {
        std::iota(buf.begin(), buf.end(), static_cast<float>(r));
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
        // sum = (i + 0) + (i + 1) = 2i + 1.
        ASSERT_FLOAT_EQ(buf[0], 1.0F);
        ASSERT_FLOAT_EQ(buf[1000], 2001.0F);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace dmis::comm
