#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "tensor/rng.hpp"

namespace dmis::comm {
namespace {

/// Runs `body(rank, comm)` on one thread per rank and joins.
void run_group(int size,
               const std::function<void(int, Communicator&)>& body) {
  auto comms = make_group(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&, r] { body(r, comms[static_cast<size_t>(r)]); });
  }
  for (auto& t : threads) t.join();
}

TEST(CommunicatorTest, GroupConstruction) {
  auto comms = make_group(4);
  ASSERT_EQ(comms.size(), 4U);
  EXPECT_EQ(comms[2].rank(), 2);
  EXPECT_EQ(comms[2].size(), 4);
  EXPECT_THROW(make_group(0), InvalidArgument);
}

TEST(CommunicatorTest, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    run_group(3, [root](int rank, Communicator& comm) {
      std::vector<float> buf(17, static_cast<float>(rank + 1));
      comm.broadcast(buf, root);
      for (float v : buf) EXPECT_FLOAT_EQ(v, static_cast<float>(root + 1));
    });
  }
}

TEST(CommunicatorTest, AllReduceSumSmall) {
  run_group(4, [](int rank, Communicator& comm) {
    std::vector<float> buf(3);
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<float>(rank * 10 + static_cast<int>(i));
    }
    comm.all_reduce_sum(buf);
    // Sum over ranks r of (10r + i) = 10*(0+1+2+3) + 4i = 60 + 4i.
    for (size_t i = 0; i < buf.size(); ++i) {
      EXPECT_FLOAT_EQ(buf[i], 60.0F + 4.0F * static_cast<float>(i));
    }
  });
}

TEST(CommunicatorTest, AllReduceSingleRankIsIdentity) {
  run_group(1, [](int, Communicator& comm) {
    std::vector<float> buf{1.0F, 2.0F};
    comm.all_reduce_sum(buf);
    EXPECT_FLOAT_EQ(buf[0], 1.0F);
    EXPECT_FLOAT_EQ(buf[1], 2.0F);
  });
}

TEST(CommunicatorTest, AllReduceMeanAveragesGradients) {
  run_group(4, [](int rank, Communicator& comm) {
    std::vector<float> grad(5, static_cast<float>(rank));  // 0,1,2,3
    comm.all_reduce_mean(grad);
    for (float v : grad) EXPECT_FLOAT_EQ(v, 1.5F);
  });
}

TEST(CommunicatorTest, ReduceSumOnlyRootChanges) {
  run_group(3, [](int rank, Communicator& comm) {
    std::vector<float> buf(4, 1.0F);
    comm.reduce_sum(buf, 1);
    if (rank == 1) {
      for (float v : buf) EXPECT_FLOAT_EQ(v, 3.0F);
    } else {
      for (float v : buf) EXPECT_FLOAT_EQ(v, 1.0F);
    }
  });
}

TEST(CommunicatorTest, AllGatherConcatenatesInRankOrder) {
  run_group(3, [](int rank, Communicator& comm) {
    // Rank r contributes r+1 copies of float(r).
    std::vector<float> mine(static_cast<size_t>(rank + 1),
                            static_cast<float>(rank));
    const std::vector<float> all = comm.all_gather(mine);
    ASSERT_EQ(all.size(), 6U);  // 1 + 2 + 3
    EXPECT_FLOAT_EQ(all[0], 0.0F);
    EXPECT_FLOAT_EQ(all[1], 1.0F);
    EXPECT_FLOAT_EQ(all[2], 1.0F);
    EXPECT_FLOAT_EQ(all[3], 2.0F);
    EXPECT_FLOAT_EQ(all[5], 2.0F);
  });
}

TEST(CommunicatorTest, BarrierOrdersPhases) {
  std::atomic<int> phase_one{0};
  run_group(4, [&](int, Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase_one.load(), 4);  // nobody passes before all arrive
  });
}

// Property test: the ring allreduce must agree with a serial reduction
// for every group size and several buffer lengths, including lengths
// smaller than, equal to, and not divisible by the rank count.
class RingAllReduceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingAllReduceProperty, MatchesSerialReduction) {
  const int ranks = std::get<0>(GetParam());
  const int length = std::get<1>(GetParam());

  // Reference: serial sum over per-rank pseudo-random buffers.
  std::vector<std::vector<float>> inputs(static_cast<size_t>(ranks));
  std::vector<double> expected(static_cast<size_t>(length), 0.0);
  for (int r = 0; r < ranks; ++r) {
    dmis::Rng rng(static_cast<uint64_t>(r) * 977 + 13);
    auto& buf = inputs[static_cast<size_t>(r)];
    buf.resize(static_cast<size_t>(length));
    for (auto& v : buf) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
      // Keep values on a coarse grid so float summation order cannot
      // change the result and the comparison can be exact.
      v = std::round(v * 64.0F) / 64.0F;
    }
    for (int i = 0; i < length; ++i) {
      expected[static_cast<size_t>(i)] += buf[static_cast<size_t>(i)];
    }
  }

  run_group(ranks, [&](int rank, Communicator& comm) {
    std::vector<float> buf = inputs[static_cast<size_t>(rank)];
    comm.all_reduce_sum(buf);
    for (int i = 0; i < length; ++i) {
      ASSERT_NEAR(buf[static_cast<size_t>(i)],
                  expected[static_cast<size_t>(i)], 1e-4)
          << "ranks=" << ranks << " len=" << length << " i=" << i
          << " rank=" << rank;
    }
  });
}

// Collective faults fire at entry, before the rank touches the
// rendezvous barrier. Arming probability 1.0 makes the whole group fail
// the same call, so nobody is left blocked — and because the barrier was
// never entered, the group stays usable once the fault is disarmed.
TEST(CommFaultTest, InjectedFaultFailsGroupWithoutDeadlock) {
  auto& faults = common::FaultInjector::instance();
  faults.reset();
  faults.arm_probability("comm.all_reduce", 1.0);

  constexpr int kRanks = 3;
  auto comms = make_group(kRanks);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(8, static_cast<float>(r + 1));
      try {
        comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      } catch (const common::FaultInjected&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), kRanks);
  EXPECT_EQ(faults.fires("comm.all_reduce"), kRanks);

  // Disarm and prove the group recovered: a clean allreduce works.
  faults.reset();
  threads.clear();
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> buf(8, static_cast<float>(r + 1));
      comms[static_cast<size_t>(r)].all_reduce_sum(buf);
      for (const float v : buf) EXPECT_FLOAT_EQ(v, 6.0F);  // 1+2+3
    });
  }
  for (auto& t : threads) t.join();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingAllReduceProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values(1, 3, 8, 64, 1000)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "ranks" + std::to_string(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dmis::comm
