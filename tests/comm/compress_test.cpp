// Gradient compression: the fp16 wire codec's IEEE edge cases (NaN,
// Inf, denormals, overflow-to-Inf saturation), bulk pack/unpack
// agreement with the scalar reference (cross-validates the F16C path
// on hardware that has it), the fused pack_scale, top-k selection
// determinism and tie-breaking, error-feedback accounting, and
// compressed collectives matching the uncompressed reference across
// ring/tree/hier.
#include "comm/compress.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "tensor/rng.hpp"

namespace dmis::comm {
namespace {

float rt(float v) { return fp16_decode(fp16_encode(v)); }

TEST(Fp16CodecTest, ExactValuesRoundTrip) {
  // Every value below is exactly representable in binary16.
  for (float v : {0.0F, -0.0F, 1.0F, -1.0F, 2.0F, 0.5F, 0.25F, 1024.0F,
                  65504.0F, -65504.0F, 6.103515625e-05F /* min normal */}) {
    EXPECT_EQ(rt(v), v) << v;
  }
  // Signed zero keeps its sign bit.
  EXPECT_TRUE(std::signbit(rt(-0.0F)));
  EXPECT_FALSE(std::signbit(rt(0.0F)));
}

TEST(Fp16CodecTest, NanAndInfSurvive) {
  EXPECT_TRUE(std::isnan(rt(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(rt(std::numeric_limits<float>::signaling_NaN())));
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(rt(inf), inf);
  EXPECT_EQ(rt(-inf), -inf);
}

TEST(Fp16CodecTest, OverflowSaturatesToInf) {
  const float inf = std::numeric_limits<float>::infinity();
  // 65504 is the largest finite half. RNE: values below the midpoint
  // 65520 round down to it; the midpoint and above carry into Inf.
  EXPECT_EQ(rt(65504.0F), 65504.0F);
  EXPECT_EQ(rt(65519.0F), 65504.0F);
  EXPECT_EQ(rt(65520.0F), inf);
  EXPECT_EQ(rt(70000.0F), inf);
  EXPECT_EQ(rt(-65519.0F), -65504.0F);
  EXPECT_EQ(rt(-65520.0F), -inf);
  EXPECT_EQ(rt(std::numeric_limits<float>::max()), inf);
}

TEST(Fp16CodecTest, DenormalsAreProducedNotFlushed) {
  // Largest subnormal: (1023/1024) * 2^-14.
  const float max_sub = 1023.0F / 1024.0F * std::exp2(-14.0F);
  EXPECT_EQ(rt(max_sub), max_sub);
  // Smallest subnormal: 2^-24.
  const float min_sub = std::exp2(-24.0F);
  EXPECT_EQ(rt(min_sub), min_sub);
  // A value between subnormal steps rounds to the nearest step, not 0.
  const float mid = 3.0F * std::exp2(-24.0F);  // exactly 3 ULPs of half
  EXPECT_EQ(rt(mid), mid);
  // Below half of the smallest subnormal: underflows to signed zero.
  EXPECT_EQ(rt(std::exp2(-26.0F)), 0.0F);
  EXPECT_TRUE(std::signbit(rt(-std::exp2(-26.0F))));
}

TEST(Fp16CodecTest, RoundToNearestEvenOnNormals) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10);
  // RNE picks the even mantissa, 1.0. One float ULP above rounds up.
  const float half_ulp = std::exp2(-11.0F);
  EXPECT_EQ(rt(1.0F + half_ulp), 1.0F);
  EXPECT_EQ(rt(std::nextafterf(1.0F + half_ulp, 2.0F)), 1.0F + 2 * half_ulp);
  // Relative error of a normal round-trip is bounded by 2^-11.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    EXPECT_NEAR(rt(v), v, std::fabs(v) * half_ulp + 1e-8F) << v;
  }
}

TEST(Fp16CodecTest, BulkPackMatchesScalarCodec) {
  // fp16_pack/fp16_unpack may take the F16C path; the result must be
  // bit-identical to the scalar reference for every element, including
  // the specials. Odd length exercises the vector tail.
  std::vector<float> src = {0.0F, -0.0F, 1.5F, -2.25F, 65519.0F, 65520.0F,
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN(),
                            std::exp2(-24.0F), -std::exp2(-15.0F)};
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    src.push_back(static_cast<float>(rng.uniform(-1e5, 1e5)));
  }
  std::vector<uint16_t> bulk(src.size());
  fp16_pack(src.data(), src.size(), bulk.data());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(bulk[i], fp16_encode(src[i])) << "i=" << i << " v=" << src[i];
  }
  std::vector<float> back(src.size());
  fp16_unpack(bulk.data(), bulk.size(), back.data());
  for (size_t i = 0; i < src.size(); ++i) {
    const float ref = fp16_decode(bulk[i]);
    if (std::isnan(ref)) {
      EXPECT_TRUE(std::isnan(back[i])) << i;
    } else {
      EXPECT_EQ(back[i], ref) << i;
    }
  }
}

TEST(Fp16CodecTest, PackScaleFoldsTheMultiply) {
  Rng rng(13);
  std::vector<float> src(513);  // odd-ish length for the tails
  for (auto& v : src) v = static_cast<float>(rng.uniform(-10.0, 10.0));
  const float scale = 3.0F;
  std::vector<uint16_t> fused(src.size());
  fp16_pack_scale(src.data(), src.size(), fused.data(), scale);
  std::vector<float> scaled(src.size());
  for (size_t i = 0; i < src.size(); ++i) scaled[i] = src[i] * scale;
  std::vector<uint16_t> two_pass(src.size());
  fp16_pack(scaled.data(), scaled.size(), two_pass.data());
  EXPECT_EQ(fused, two_pass);
  // scale == 1 is exactly fp16_pack.
  fp16_pack_scale(src.data(), src.size(), fused.data(), 1.0F);
  fp16_pack(src.data(), src.size(), two_pass.data());
  EXPECT_EQ(fused, two_pass);
}

TEST(CompressModeTest, ParseAndEnvResolution) {
  EXPECT_EQ(parse_compress_mode("none"), CompressMode::kNone);
  EXPECT_EQ(parse_compress_mode("fp16"), CompressMode::kFp16);
  EXPECT_EQ(parse_compress_mode("topk"), CompressMode::kTopK);
  EXPECT_FALSE(parse_compress_mode("gzip").has_value());

  // Save the knobs: verify.sh re-runs this suite under DMIS_COMPRESS
  // sweeps, and the sweep's setting must survive this test.
  const char* prior_mode = ::getenv("DMIS_COMPRESS");
  const std::string saved_mode = prior_mode != nullptr ? prior_mode : "";
  const char* prior_ratio = ::getenv("DMIS_TOPK_RATIO");
  const std::string saved_ratio = prior_ratio != nullptr ? prior_ratio : "";

  ::setenv("DMIS_COMPRESS", "fp16", 1);
  ::setenv("DMIS_TOPK_RATIO", "0.25", 1);
  CompressOptions configured;
  configured.mode = CompressMode::kTopK;
  configured.topk_ratio = 0.5;
  const CompressOptions resolved = CompressOptions::resolved(configured);
  EXPECT_EQ(resolved.mode, CompressMode::kFp16);  // env wins
  EXPECT_DOUBLE_EQ(resolved.topk_ratio, 0.25);
  ::unsetenv("DMIS_COMPRESS");
  ::unsetenv("DMIS_TOPK_RATIO");
  const CompressOptions kept = CompressOptions::resolved(configured);
  EXPECT_EQ(kept.mode, CompressMode::kTopK);
  EXPECT_DOUBLE_EQ(kept.topk_ratio, 0.5);

  EXPECT_EQ(make_compressor(CompressOptions{}, 4), nullptr);

  if (prior_mode != nullptr) ::setenv("DMIS_COMPRESS", saved_mode.c_str(), 1);
  if (prior_ratio != nullptr) {
    ::setenv("DMIS_TOPK_RATIO", saved_ratio.c_str(), 1);
  }
}

TEST(TopKCompressorTest, SelectionIsDeterministicAndTiesBreakByIndex) {
  CompressOptions opts;
  opts.mode = CompressMode::kTopK;
  opts.topk_ratio = 0.5;  // k = 4 of 8
  auto c = make_compressor(opts, /*world=*/2);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->error_feedback());

  // Magnitude ties everywhere: |v| = 2 at indices {1,3,5}, |v| = 1 at
  // the rest. k = 4 must take the three 2s plus the *lowest-index* 1.
  const std::vector<float> grad = {1.0F, -2.0F, 1.0F, 2.0F,
                                   -1.0F, 2.0F, 1.0F, -1.0F};
  std::vector<float> wire_a(c->wire_len(grad.size()), 0.0F);
  std::vector<float> wire_b(c->wire_len(grad.size()), 0.0F);
  std::vector<float> res_a(grad.size(), 0.0F);
  std::vector<float> res_b(grad.size(), 0.0F);
  c->encode(grad, wire_a, /*rank=*/0, res_a);
  c->encode(grad, wire_b, /*rank=*/0, res_b);
  EXPECT_EQ(wire_a, wire_b);  // bitwise deterministic
  EXPECT_EQ(res_a, res_b);

  // Rank 0's slot holds k (index, value) pairs sorted by index.
  std::vector<int> indices;
  for (size_t p = 0; p < 4; ++p) {
    indices.push_back(static_cast<int>(wire_a[2 * p]));
  }
  EXPECT_EQ(indices, (std::vector<int>{0, 1, 3, 5}));
  EXPECT_EQ(wire_a[1], 1.0F);   // index 0, the tie-broken pick
  EXPECT_EQ(wire_a[3], -2.0F);
  // Unsent entries stay in the residual; sent entries are zeroed there.
  EXPECT_EQ(res_a[0], 0.0F);
  EXPECT_EQ(res_a[2], 1.0F);
  EXPECT_EQ(res_a[7], -1.0F);
}

TEST(TopKCompressorTest, ErrorFeedbackDelaysButNeverDropsMass) {
  CompressOptions opts;
  opts.mode = CompressMode::kTopK;
  opts.topk_ratio = 0.26;  // k = 1 of 4
  auto c = make_compressor(opts, /*world=*/1);
  ASSERT_NE(c, nullptr);

  std::vector<float> residual(4, 0.0F);
  std::vector<float> grad = {3.0F, 2.0F, 1.0F, 0.5F};
  std::vector<float> wire(c->wire_len(grad.size()), 0.0F);
  std::vector<float> out(4, 0.0F);

  // Step 1 sends the 3; the rest waits in the residual.
  c->encode(grad, wire, 0, residual);
  c->decode(wire, out, /*unpack_scale=*/1.0F);
  EXPECT_EQ(out, (std::vector<float>{3.0F, 0.0F, 0.0F, 0.0F}));
  EXPECT_EQ(residual, (std::vector<float>{0.0F, 2.0F, 1.0F, 0.5F}));

  // Step 2 with a zero gradient: the residual alone drives selection —
  // the delayed 2 goes out now.
  std::fill(grad.begin(), grad.end(), 0.0F);
  std::fill(wire.begin(), wire.end(), 0.0F);
  c->encode(grad, wire, 0, residual);
  c->decode(wire, out, 1.0F);
  EXPECT_EQ(out, (std::vector<float>{0.0F, 2.0F, 0.0F, 0.0F}));
  EXPECT_EQ(residual, (std::vector<float>{0.0F, 0.0F, 1.0F, 0.5F}));

  // decode applies unpack_scale itself (wire_scale withholds it from
  // the collective so index floats stay intact).
  EXPECT_EQ(c->wire_scale(0.25F), 1.0F);
  std::fill(grad.begin(), grad.end(), 0.0F);
  std::fill(wire.begin(), wire.end(), 0.0F);
  c->encode(grad, wire, 0, residual);
  c->decode(wire, out, 0.25F);
  EXPECT_EQ(out[2], 0.25F);
}

// Compressed allreduce against the uncompressed reference, every
// algorithm. The wire carries packed halves; each reduce step decodes,
// adds in fp32, re-encodes — so the result must match the fp32 sum to
// half precision of the running magnitude.
TEST(Fp16WireCollectiveTest, MatchesFp32SumAcrossAlgorithms) {
  constexpr size_t kLen = 1000;  // odd wire tail: 500 slots
  constexpr int kWorld = 4;
  for (AllReduceAlgo algo :
       {AllReduceAlgo::kRing, AllReduceAlgo::kTree, AllReduceAlgo::kHier}) {
    // Inputs on a coarse grid: every partial sum is half-exact, so the
    // compressed result must equal the reference *bitwise*.
    std::vector<std::vector<float>> inputs(kWorld);
    Rng rng(29 + static_cast<uint64_t>(algo));
    for (auto& buf : inputs) {
      buf.resize(kLen);
      for (auto& v : buf) {
        v = std::round(static_cast<float>(rng.uniform(-8.0, 8.0)) * 16.0F) /
            16.0F;
      }
    }
    std::vector<double> expected(kLen, 0.0);
    for (const auto& buf : inputs) {
      for (size_t i = 0; i < kLen; ++i) expected[i] += buf[i];
    }

    GroupOptions gopts;
    gopts.algo = algo;
    gopts.ranks_per_node = 2;
    auto comms = make_group(kWorld, gopts);
    std::vector<std::vector<float>> wires(kWorld);
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        auto& wire = wires[static_cast<size_t>(r)];
        wire.assign(fp16_wire_floats(kLen), 0.0F);
        auto* halves = reinterpret_cast<uint16_t*>(wire.data());
        fp16_pack(inputs[static_cast<size_t>(r)].data(), kLen, halves);
        auto req = comms[static_cast<size_t>(r)].all_reduce_sum_async(
            std::span<float>(wire.data(), wire.size()), 1.0F,
            WireFormat::kFp16);
        req.wait();
      });
    }
    for (auto& t : threads) t.join();

    for (int r = 0; r < kWorld; ++r) {
      std::vector<float> out(kLen);
      fp16_unpack(reinterpret_cast<const uint16_t*>(
                      wires[static_cast<size_t>(r)].data()),
                  kLen, out.data());
      for (size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(out[i], static_cast<float>(expected[i]))
            << "algo=" << static_cast<int>(algo) << " rank=" << r
            << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace dmis::comm
