#include "comm/membership.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

namespace dmis::comm {
namespace {

WorldSignature tiny_signature() {
  return {{"conv.weight", {2, 1, 3, 3, 3}}, {"conv.bias", {2}}};
}

// Polls until `parked()` reaches `n` — the joiner thread needs a moment
// to reach await_admission().
bool wait_parked(MembershipService& ms, size_t n, int timeout_ms = 5000) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (ms.parked() >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(MembershipTest, LeaseLifecycleIsDeterministic) {
  MembershipService ms(3, tiny_signature(), /*lease_ms=*/100);
  EXPECT_EQ(ms.lease_ms(), 100);
  EXPECT_EQ(ms.world(), 3);
  EXPECT_EQ(ms.epoch(), 0);

  // Fresh service: all leases date from time 0.
  EXPECT_TRUE(ms.lease_valid(0, /*now_us=*/100'000));   // exactly at bound
  EXPECT_FALSE(ms.lease_valid(0, /*now_us=*/100'001));  // just past it

  ms.renew(1, /*beat_us=*/500'000);
  EXPECT_TRUE(ms.lease_valid(1, 600'000));
  EXPECT_FALSE(ms.lease_valid(0, 600'000));
  EXPECT_EQ(ms.expired_ranks(600'000), (std::vector<int>{0, 2}));

  // Renewal takes the max: an older heartbeat cannot roll a lease back.
  ms.renew(1, 400'000);
  EXPECT_TRUE(ms.lease_valid(1, 600'000));

  // A shrink resets every lease and bumps the epoch.
  ms.set_world(2, /*now_us=*/1'000'000);
  EXPECT_EQ(ms.world(), 2);
  EXPECT_EQ(ms.epoch(), 1);
  EXPECT_TRUE(ms.expired_ranks(1'000'000).empty());
  EXPECT_THROW((void)ms.lease_valid(2, 0), Error);  // outside new world
}

TEST(MembershipTest, EnvOverridesLeaseDuration) {
  ::setenv("DMIS_COMM_LEASE_MS", "123", 1);
  MembershipService ms(1, tiny_signature(), /*lease_ms=*/5000);
  EXPECT_EQ(ms.lease_ms(), 123);  // env wins over the option
  ::unsetenv("DMIS_COMM_LEASE_MS");
  MembershipService from_opt(1, tiny_signature(), /*lease_ms=*/5000);
  EXPECT_EQ(from_opt.lease_ms(), 5000);
  MembershipService def(1, tiny_signature());
  EXPECT_EQ(def.lease_ms(), 2000);
}

TEST(MembershipTest, JoinAdmitCommitAssignsNextRanks) {
  MembershipService ms(3, tiny_signature(), 1000);
  auto join = [&](int64_t timeout_ms) {
    const JoinTicket t = ms.request_join(tiny_signature());
    return ms.await_admission(t, timeout_ms);
  };
  auto j0 = std::async(std::launch::async, join, 10'000);
  auto j1 = std::async(std::launch::async, join, 10'000);
  ASSERT_TRUE(wait_parked(ms, 2));
  EXPECT_EQ(ms.pending(), 2U);

  // Driver side: epoch-boundary admission, then the commit barrier.
  EXPECT_EQ(ms.admit_pending(), 2);
  EXPECT_EQ(ms.world(), 3);  // not grown until the commit
  EXPECT_EQ(ms.commit_transition(/*now_us=*/42), 5);
  EXPECT_EQ(ms.world(), 5);
  EXPECT_EQ(ms.epoch(), 1);

  // The joiners get the appended ranks (in request order).
  std::vector<int> ranks{j0.get(), j1.get()};
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{3, 4}));
  EXPECT_EQ(ms.pending(), 0U);
  // Fresh leases for everyone, dated from the commit.
  EXPECT_TRUE(ms.expired_ranks(42).empty());
}

TEST(MembershipTest, ShapeMismatchIsTypedRejection) {
  MembershipService ms(2, tiny_signature(), 1000);
  WorldSignature bad = tiny_signature();
  bad[0].dims = {4, 1, 3, 3, 3};  // wrong channel count
  auto joiner = std::async(std::launch::async, [&] {
    const JoinTicket t = ms.request_join(bad);
    return ms.await_admission(t, 10'000);
  });
  ASSERT_TRUE(wait_parked(ms, 1));
  EXPECT_EQ(ms.admit_pending(), 0);  // validated, not admitted
  try {
    (void)joiner.get();
    FAIL() << "expected MembershipError{kShapeMismatch}";
  } catch (const MembershipError& e) {
    EXPECT_EQ(e.kind(), MembershipErrorKind::kShapeMismatch);
    EXPECT_NE(std::string(e.what()).find("conv.weight"), std::string::npos);
  }
  // The rejected request is gone; a later commit is a no-op.
  EXPECT_EQ(ms.pending(), 0U);
  EXPECT_EQ(ms.commit_transition(0), 2);
  EXPECT_EQ(ms.epoch(), 0);
}

TEST(MembershipTest, MixedBatchAdmitsGoodRejectsBad) {
  MembershipService ms(2, tiny_signature(), 1000);
  WorldSignature bad = tiny_signature();
  bad.pop_back();  // parameter count differs
  auto good = std::async(std::launch::async, [&] {
    return ms.await_admission(ms.request_join(tiny_signature()), 10'000);
  });
  auto rejected = std::async(std::launch::async, [&]() -> int {
    return ms.await_admission(ms.request_join(bad), 10'000);
  });
  ASSERT_TRUE(wait_parked(ms, 2));
  EXPECT_EQ(ms.admit_pending(), 1);
  EXPECT_EQ(ms.commit_transition(7), 3);
  EXPECT_EQ(good.get(), 2);
  EXPECT_THROW((void)rejected.get(), MembershipError);
}

TEST(MembershipTest, PendingTimeoutIsTyped) {
  MembershipService ms(1, tiny_signature(), 1000);
  const JoinTicket t = ms.request_join(tiny_signature());
  try {
    (void)ms.await_admission(t, /*timeout_ms=*/50);  // nobody admits
    FAIL() << "expected MembershipError{kTimeout}";
  } catch (const MembershipError& e) {
    EXPECT_EQ(e.kind(), MembershipErrorKind::kTimeout);
  }
  EXPECT_EQ(ms.pending(), 0U);  // the timed-out request cleaned up
}

TEST(MembershipTest, UnparkedRequestsAreNotAdmitted) {
  // A request that was filed but whose joiner never reached
  // await_admission() must not be committed into the world — the
  // commit would hand a rank to a thread that is not waiting for it.
  MembershipService ms(2, tiny_signature(), 1000);
  (void)ms.request_join(tiny_signature());
  EXPECT_EQ(ms.pending(), 1U);
  EXPECT_EQ(ms.parked(), 0U);
  EXPECT_EQ(ms.admit_pending(), 0);
  EXPECT_EQ(ms.commit_transition(0), 2);
  EXPECT_EQ(ms.world(), 2);
}

TEST(MembershipTest, ShutdownWakesParkedJoinersTyped) {
  auto ms = std::make_unique<MembershipService>(2, tiny_signature(), 1000);
  auto joiner = std::async(std::launch::async, [&] {
    return ms->await_admission(ms->request_join(tiny_signature()), 60'000);
  });
  ASSERT_TRUE(wait_parked(*ms, 1));
  ms->shutdown();
  try {
    (void)joiner.get();
    FAIL() << "expected MembershipError{kShutdown}";
  } catch (const MembershipError& e) {
    EXPECT_EQ(e.kind(), MembershipErrorKind::kShutdown);
  }
  // Requests filed after shutdown are rejected on arrival.
  const JoinTicket late = ms->request_join(tiny_signature());
  EXPECT_THROW((void)ms->await_admission(late, 1000), MembershipError);
}

TEST(MembershipTest, AdmittedTicketSurvivesPendingDeadline) {
  // Once admitted, the commit is imminent: the pending timeout no
  // longer applies and the joiner waits for commit_transition().
  MembershipService ms(1, tiny_signature(), 1000);
  auto joiner = std::async(std::launch::async, [&] {
    return ms.await_admission(ms.request_join(tiny_signature()),
                              /*timeout_ms=*/100);
  });
  ASSERT_TRUE(wait_parked(ms, 1));
  ASSERT_EQ(ms.admit_pending(), 1);
  // Sleep past the pending deadline before committing.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(ms.commit_transition(0), 2);
  EXPECT_EQ(joiner.get(), 1);
}

TEST(MembershipTest, SignatureMismatchDescriptions) {
  const WorldSignature world = tiny_signature();
  EXPECT_EQ(describe_signature_mismatch(world, world), "");
  WorldSignature fewer = world;
  fewer.pop_back();
  EXPECT_NE(describe_signature_mismatch(world, fewer).find("count"),
            std::string::npos);
  WorldSignature renamed = world;
  renamed[1].name = "conv.beta";
  EXPECT_NE(describe_signature_mismatch(world, renamed).find("name"),
            std::string::npos);
  WorldSignature reshaped = world;
  reshaped[0].dims = {2, 1, 5, 5, 5};
  const std::string why = describe_signature_mismatch(world, reshaped);
  EXPECT_NE(why.find("shape"), std::string::npos);
  EXPECT_NE(why.find("[2,1,5,5,5]"), std::string::npos);
}

}  // namespace
}  // namespace dmis::comm
