#include "common/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace dmis::common {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, DisarmedByDefault) {
  auto& fi = FaultInjector::instance();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.should_fail("anything"));
    EXPECT_NO_THROW(fi.maybe_fail("anything"));
  }
  // Nothing armed -> the fast path skips even call counting.
  EXPECT_EQ(fi.calls("anything"), 0);
  EXPECT_EQ(fi.total_fires(), 0);
}

TEST_F(FaultInjectorTest, NthCallFiresExactlyOnce) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 3);
  EXPECT_FALSE(fi.should_fail("p"));
  EXPECT_FALSE(fi.should_fail("p"));
  EXPECT_TRUE(fi.should_fail("p"));   // call 3
  EXPECT_FALSE(fi.should_fail("p"));  // budget (1) exhausted
  EXPECT_EQ(fi.calls("p"), 4);
  EXPECT_EQ(fi.fires("p"), 1);
}

TEST_F(FaultInjectorTest, NthCallWithBudgetFiresConsecutively) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 2, /*max_fires=*/2);
  EXPECT_FALSE(fi.should_fail("p"));
  EXPECT_TRUE(fi.should_fail("p"));
  EXPECT_TRUE(fi.should_fail("p"));
  EXPECT_FALSE(fi.should_fail("p"));
  EXPECT_EQ(fi.fires("p"), 2);
}

TEST_F(FaultInjectorTest, EveryNFiresPeriodically) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p", 3);
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    if (fi.should_fail("p")) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired off-period at call " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FaultInjectorTest, EveryNRespectsFireBudget) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p", 2, /*max_fires=*/2);
  int fired = 0;
  for (int i = 0; i < 20; ++i) fired += fi.should_fail("p") ? 1 : 0;
  EXPECT_EQ(fired, 2);
}

TEST_F(FaultInjectorTest, MaybeFailThrowsTypedError) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 1);
  EXPECT_THROW(fi.maybe_fail("p"), FaultInjected);
  // FaultInjected is a dmis::Error, so generic handlers catch it too.
  fi.arm_nth_call("q", 1);
  EXPECT_THROW(fi.maybe_fail("q"), Error);
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto& fi = FaultInjector::instance();
  const auto pattern = [&](uint64_t seed) {
    fi.reset();
    fi.seed(seed);
    fi.arm_probability("p", 0.3);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(fi.should_fail("p"));
    return fired;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  const auto c = pattern(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // p=0.3 over 200 draws: loose sanity band on the fire rate.
  const int count_a = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(count_a, 30);
  EXPECT_LT(count_a, 90);
}

TEST_F(FaultInjectorTest, PointsAreIndependentStreams) {
  auto& fi = FaultInjector::instance();
  fi.seed(42);
  fi.arm_probability("a", 0.5);
  fi.arm_probability("b", 0.5);
  std::vector<bool> fa;
  std::vector<bool> fb;
  // Interleave the calls; per-point streams must not disturb each other.
  for (int i = 0; i < 64; ++i) {
    fa.push_back(fi.should_fail("a"));
    fb.push_back(fi.should_fail("b"));
  }
  fi.reset();
  fi.seed(42);
  fi.arm_probability("a", 0.5);
  fi.arm_probability("b", 0.5);
  std::vector<bool> fb2;
  // Different interleaving: drain b first, then a.
  for (int i = 0; i < 64; ++i) fb2.push_back(fi.should_fail("b"));
  EXPECT_EQ(fb, fb2);
}

TEST_F(FaultInjectorTest, DisarmStopsFiringButKeepsCounters) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p", 1);
  fi.arm_every_n("other", 100);  // keeps the injector active
  EXPECT_TRUE(fi.should_fail("p"));
  fi.disarm("p");
  EXPECT_FALSE(fi.should_fail("p"));
  EXPECT_EQ(fi.calls("p"), 2);
  EXPECT_EQ(fi.fires("p"), 1);
}

TEST_F(FaultInjectorTest, ResetDisarmsEverything) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p", 1);
  EXPECT_TRUE(fi.should_fail("p"));
  fi.reset();
  EXPECT_FALSE(fi.should_fail("p"));
  EXPECT_EQ(fi.calls("p"), 0);
  EXPECT_EQ(fi.total_fires(), 0);
}

TEST_F(FaultInjectorTest, RejectsBadArguments) {
  auto& fi = FaultInjector::instance();
  EXPECT_THROW(fi.arm_nth_call("p", 0), InvalidArgument);
  EXPECT_THROW(fi.arm_every_n("p", 0), InvalidArgument);
  EXPECT_THROW(fi.arm_probability("p", -0.1), InvalidArgument);
  EXPECT_THROW(fi.arm_probability("p", 1.5), InvalidArgument);
}

TEST_F(FaultInjectorTest, DelayActionSleepsThenProceeds) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 1, /*max_fires=*/1);
  fi.set_action_delay("p", 60);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(fi.maybe_fail("p"));  // fires, but sleeps instead
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 50);
  EXPECT_EQ(fi.fires("p"), 1);
  // Budget spent: the next call neither throws nor sleeps.
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(fi.maybe_fail("p"));
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t1)
                .count(),
            50);
}

TEST_F(FaultInjectorTest, HangActionParksUntilReleased) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 1);
  fi.set_action_hang("p");
  std::thread victim([&] { fi.maybe_fail("p"); });
  while (fi.hung_now() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fi.hung_now(), 1);
  fi.release_hangs();
  victim.join();
  EXPECT_EQ(fi.hung_now(), 0);
  EXPECT_EQ(fi.fires("p"), 1);
}

TEST_F(FaultInjectorTest, HangActionAutoReleases) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 1);
  fi.set_action_hang("p", /*auto_release_ms=*/60);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(fi.maybe_fail("p"));  // returns on its own
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 50);
  EXPECT_EQ(fi.hung_now(), 0);
}

TEST_F(FaultInjectorTest, ResetReleasesParkedThreads) {
  auto& fi = FaultInjector::instance();
  fi.arm_nth_call("p", 1);
  fi.set_action_hang("p");
  std::thread victim([&] { fi.maybe_fail("p"); });
  while (fi.hung_now() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fi.reset();  // teardown path: must never leave a thread parked
  victim.join();
  EXPECT_EQ(fi.hung_now(), 0);
}

TEST_F(FaultInjectorTest, RankScopedPointTargetsOneRank) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p.r2", 1);
  EXPECT_NO_THROW(fi.maybe_fail("p", 0));
  EXPECT_NO_THROW(fi.maybe_fail("p", 1));
  EXPECT_THROW(fi.maybe_fail("p", 2), FaultInjected);
  EXPECT_THROW(fi.maybe_fail("p", 2), FaultInjected);
  EXPECT_EQ(fi.fires("p.r2"), 2);
  EXPECT_EQ(fi.fires("p"), 0);
}

TEST_F(FaultInjectorTest, BarePointStillFiresForEveryRank) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p", 1, /*max_fires=*/2);
  EXPECT_THROW(fi.maybe_fail("p", 0), FaultInjected);
  EXPECT_THROW(fi.maybe_fail("p", 7), FaultInjected);
}

TEST_F(FaultInjectorTest, ThreadSafeCounting) {
  auto& fi = FaultInjector::instance();
  fi.arm_every_n("p", 2, /*max_fires=*/-1);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 250;
  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (fi.should_fail("p")) fired.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fi.calls("p"), kThreads * kCallsPerThread);
  EXPECT_EQ(fired.load(), kThreads * kCallsPerThread / 2);
  EXPECT_EQ(fi.fires("p"), fired.load());
}

TEST_F(FaultInjectorTest, RestartActionRunsCallbackThenThrows) {
  auto& fi = FaultInjector::instance();
  int rejoins_filed = 0;
  fi.arm_nth_call("node", 2);
  fi.set_action_restart("node", [&] { ++rejoins_filed; });
  fi.maybe_fail("node");  // call 1: no fire, no callback
  EXPECT_EQ(rejoins_filed, 0);
  try {
    fi.maybe_fail("node");
    FAIL() << "expected FaultInjected from the restart action";
  } catch (const FaultInjected& e) {
    EXPECT_NE(std::string(e.what()).find("injected restart"),
              std::string::npos);
  }
  // The side effect ran before the crash propagated — the rejoin is
  // already in flight when the group sees the failure.
  EXPECT_EQ(rejoins_filed, 1);
  EXPECT_EQ(fi.fires("node"), 1);
  fi.maybe_fail("node");  // fire budget spent: proceeds quietly
  EXPECT_EQ(rejoins_filed, 1);
}

TEST_F(FaultInjectorTest, RejoinActionRunsCallbackAndProceeds) {
  auto& fi = FaultInjector::instance();
  int announced = 0;
  fi.arm_nth_call("standby", 1);
  fi.set_action_rejoin("standby", [&] { ++announced; });
  EXPECT_NO_THROW(fi.maybe_fail("standby"));
  EXPECT_EQ(announced, 1);
  EXPECT_EQ(fi.fires("standby"), 1);
}

TEST_F(FaultInjectorTest, RestartActionWithFireBudgetKillsTwice) {
  // The double-fault chaos pattern: one arm, two deaths — the counters
  // are cumulative, so max_fires=2 covers kill -> rejoin -> kill.
  auto& fi = FaultInjector::instance();
  int rejoins_filed = 0;
  fi.arm_nth_call("node", 1, /*max_fires=*/2);
  fi.set_action_restart("node", [&] { ++rejoins_filed; });
  EXPECT_THROW(fi.maybe_fail("node"), FaultInjected);
  EXPECT_THROW(fi.maybe_fail("node"), FaultInjected);
  EXPECT_NO_THROW(fi.maybe_fail("node"));
  EXPECT_EQ(rejoins_filed, 2);
  EXPECT_EQ(fi.fires("node"), 2);
}

TEST_F(FaultInjectorTest, CallbackActionsRejectNullCallbacks) {
  auto& fi = FaultInjector::instance();
  EXPECT_THROW(fi.set_action_restart("p", nullptr), Error);
  EXPECT_THROW(fi.set_action_rejoin("p", nullptr), Error);
}

}  // namespace
}  // namespace dmis::common
