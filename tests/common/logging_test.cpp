#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dmis {
namespace {

/// Restores the default sink and level even if a test fails.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = log_level(); }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, SinkCapturesFormattedLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  set_log_level(LogLevel::kInfo);

  DMIS_LOG(kInfo) << "hello " << 42;
  DMIS_LOG(kDebug) << "filtered out";
  DMIS_LOG(kWarn) << "watch out";

  ASSERT_EQ(captured.size(), 2U);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("hello 42"), std::string::npos);
  EXPECT_NE(captured[0].second.find("INFO"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_NE(captured[1].second.find("watch out"), std::string::npos);
}

TEST_F(LoggingTest, LinesCarryThreadTag) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& line) {
    captured.push_back(line);
  });
  set_log_level(LogLevel::kInfo);

  DMIS_LOG(kInfo) << "from main";

  ASSERT_EQ(captured.size(), 1U);
  const std::string expected_tag = " t" + std::to_string(thread_tag()) + "]";
  EXPECT_NE(captured[0].find(expected_tag), std::string::npos)
      << captured[0];
}

TEST_F(LoggingTest, ThreadTagsAreDistinctAcrossThreads) {
  const int main_tag = thread_tag();
  EXPECT_EQ(thread_tag(), main_tag);  // stable on one thread

  int other_tag = -1;
  std::thread t([&] { other_tag = thread_tag(); });
  t.join();
  EXPECT_NE(other_tag, main_tag);
  EXPECT_GE(other_tag, 0);
}

TEST_F(LoggingTest, NullSinkRestoresStderr) {
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  DMIS_LOG(kError) << "captured";
  set_log_sink(nullptr);
  DMIS_LOG(kError) << "to stderr (visually ignorable in test output)";
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dmis
