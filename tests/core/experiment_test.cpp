#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dmis::core {
namespace {

TEST(ExperimentConfigTest, ParamRoundTrip) {
  ExperimentConfig cfg;
  cfg.lr = 1e-5;
  cfg.loss = "qdice";
  cfg.base_filters = 16;
  cfg.augment = true;
  const ray::ParamSet p = cfg.to_params();
  const ExperimentConfig back = ExperimentConfig::from_params(p);
  EXPECT_DOUBLE_EQ(back.lr, 1e-5);
  EXPECT_EQ(back.loss, "qdice");
  EXPECT_EQ(back.base_filters, 16);
  EXPECT_TRUE(back.augment);
}

TEST(ExperimentConfigTest, SimViewCarriesFields) {
  ExperimentConfig cfg;
  cfg.base_filters = 16;
  cfg.batch_per_replica = 1;
  cfg.augment = true;
  const cluster::SimTrialConfig sim = cfg.to_sim();
  EXPECT_EQ(sim.base_filters, 16);
  EXPECT_EQ(sim.batch_per_replica, 1);
  EXPECT_TRUE(sim.augment);
}

TEST(ExperimentConfigTest, NameIsStable) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.name(), "lr1e-04_dice_bf8_aug0_b2");
}

TEST(ExperimentConfigTest, RejectsBadParams) {
  ray::ParamSet p{{"lr", -1.0},
                  {"loss", std::string("dice")},
                  {"base_filters", int64_t{8}},
                  {"augment", false}};
  EXPECT_THROW(ExperimentConfig::from_params(p), InvalidArgument);
  p["lr"] = 1e-4;
  p["loss"] = std::string("focal");
  EXPECT_THROW(ExperimentConfig::from_params(p), InvalidArgument);
}

}  // namespace
}  // namespace dmis::core
