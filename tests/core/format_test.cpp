#include "core/format.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dmis::core {
namespace {

TEST(FormatTest, HmsMatchesPaperStyle) {
  // 44:18:02 — the paper's data-parallel n=1 time.
  EXPECT_EQ(format_hms(44 * 3600 + 18 * 60 + 2), "44:18:02");
  EXPECT_EQ(format_hms(0), "0:00:00");
  EXPECT_EQ(format_hms(59), "0:00:59");
  EXPECT_EQ(format_hms(60), "0:01:00");
  EXPECT_EQ(format_hms(3599.6), "1:00:00");  // rounds
}

TEST(FormatTest, HmsRejectsNegative) {
  EXPECT_THROW(format_hms(-1.0), InvalidArgument);
}

TEST(FormatTest, Speedup) {
  EXPECT_EQ(format_speedup(13.184), "13.18");
  EXPECT_EQ(format_speedup(1.0), "1.00");
}

}  // namespace
}  // namespace dmis::core
