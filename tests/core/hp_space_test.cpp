#include "core/hp_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace dmis::core {
namespace {

TEST(HpSpaceTest, PaperGridHas32Points) {
  EXPECT_EQ(HpSpace::paper().grid_size(), 32);
}

TEST(HpSpaceTest, ExpandDerivesBatchFromMemoryModel) {
  const cluster::CostModel cost(cluster::ClusterSpec::marenostrum_cte());
  const auto configs = HpSpace::expand(HpSpace::paper(), cost);
  ASSERT_EQ(configs.size(), 32U);
  int heavy = 0, light = 0;
  for (const auto& cfg : configs) {
    EXPECT_EQ(cfg.epochs, 250);
    if (cfg.base_filters == 8) {
      EXPECT_EQ(cfg.batch_per_replica, 2);  // paper: batch 2 fits
      ++light;
    } else {
      EXPECT_EQ(cfg.base_filters, 16);
      EXPECT_EQ(cfg.batch_per_replica, 1);  // paper: "or even 1"
      ++heavy;
    }
  }
  EXPECT_EQ(light, 16);
  EXPECT_EQ(heavy, 16);
}

TEST(HpSpaceTest, ConfigsAreDistinct) {
  const cluster::CostModel cost(cluster::ClusterSpec::marenostrum_cte());
  const auto configs = HpSpace::expand(HpSpace::paper(), cost);
  std::set<std::string> names;
  for (const auto& cfg : configs) {
    names.insert(cfg.name() + "_" + std::to_string(cfg.lr));
  }
  EXPECT_EQ(names.size(), 32U);
}

TEST(HpSpaceTest, InfeasibleConfigRejected) {
  // bf=32 fits no batch on a 16 GB V100 (even batch 1 exceeds memory);
  // the expansion must refuse rather than emit an impossible trial.
  const cluster::CostModel cost(cluster::ClusterSpec::marenostrum_cte());
  ray::SearchSpace space;
  space.choice("lr", {1e-4})
      .choice("loss", {std::string("dice")})
      .choice("base_filters", {int64_t{32}})
      .choice("augment", {false});
  EXPECT_THROW(HpSpace::expand(space, cost), InvalidArgument);
}

TEST(HpSpaceTest, SeedsAreUniquePerConfig) {
  const cluster::CostModel cost(cluster::ClusterSpec::marenostrum_cte());
  const auto configs = HpSpace::expand(HpSpace::paper(), cost, 250, 100);
  std::set<uint64_t> seeds;
  for (const auto& cfg : configs) seeds.insert(cfg.seed);
  EXPECT_EQ(seeds.size(), 32U);
}

}  // namespace
}  // namespace dmis::core
