#include "core/pipeline.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "common/check.hpp"

namespace dmis::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dmis_pipe_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  PipelineOptions small_options() {
    PipelineOptions opts;
    opts.work_dir = dir_.string();
    opts.num_subjects = 10;
    opts.phantom.depth = 9;   // crops to 8 with divisor 2
    opts.phantom.height = 8;
    opts.phantom.width = 8;
    opts.model_depth = 2;
    opts.shuffle_buffer = 4;
    return opts;
  }

  ExperimentConfig tiny_config() {
    ExperimentConfig cfg;
    cfg.base_filters = 2;
    cfg.epochs = 2;
    cfg.lr = 1e-3;
    cfg.batch_per_replica = 2;
    return cfg;
  }

  std::filesystem::path dir_;
};

TEST_F(PipelineTest, PrepareWritesSplitsAndShards) {
  DistMisPipeline pipeline(small_options());
  const PreparedData& prep = pipeline.prepare();
  EXPECT_EQ(prep.split.train.size(), 7U);  // 70% of 10
  EXPECT_EQ(prep.split.val.size(), 1U);
  EXPECT_EQ(prep.split.test.size(), 2U);
  EXPECT_EQ(prep.train_records.size(), 2U);  // shards_per_split default
  for (const auto& p : prep.train_records) {
    EXPECT_TRUE(std::filesystem::exists(p));
  }
  // Post-crop geometry: 4 channels, 8^3 (phantom depth 9 cropped to 8).
  EXPECT_EQ(prep.image_shape, (Shape{4, 8, 8, 8}));
  EXPECT_GT(prep.binarize_seconds, 0.0);
}

TEST_F(PipelineTest, PrepareIsIdempotent) {
  DistMisPipeline pipeline(small_options());
  const PreparedData& a = pipeline.prepare();
  const double t = a.binarize_seconds;
  const PreparedData& b = pipeline.prepare();
  EXPECT_EQ(b.binarize_seconds, t);  // reused, not regenerated
}

TEST_F(PipelineTest, TrainStreamCoversAllTrainSubjects) {
  DistMisPipeline pipeline(small_options());
  pipeline.prepare();
  auto stream = pipeline.train_stream(/*augment=*/false);
  std::set<int64_t> ids;
  while (auto e = stream->next()) ids.insert(e->id);
  EXPECT_EQ(ids.size(), 7U);
}

TEST_F(PipelineTest, AugmentedStreamPreservesMaskGeometryPairing) {
  DistMisPipeline pipeline(small_options());
  pipeline.prepare();
  auto stream = pipeline.train_stream(/*augment=*/true);
  int64_t count = 0;
  while (auto e = stream->next()) {
    ++count;
    EXPECT_EQ(e->image.shape(), (Shape{4, 8, 8, 8}));
    EXPECT_EQ(e->label.shape(), (Shape{1, 8, 8, 8}));
    // Labels stay binary after flips.
    for (int64_t i = 0; i < e->label.numel(); ++i) {
      EXPECT_TRUE(e->label[i] == 0.0F || e->label[i] == 1.0F);
    }
  }
  EXPECT_EQ(count, 7);
}

TEST_F(PipelineTest, RunSingleTrains) {
  DistMisPipeline pipeline(small_options());
  const train::TrainReport report = pipeline.run_single(tiny_config());
  ASSERT_EQ(report.history.size(), 2U);
  EXPECT_TRUE(std::isfinite(report.history.back().train_loss));
  EXPECT_TRUE(report.history.back().val_dice.has_value());
}

TEST_F(PipelineTest, RunDataParallelTrains) {
  DistMisPipeline pipeline(small_options());
  const train::TrainReport report =
      pipeline.run_data_parallel(tiny_config(), 2);
  ASSERT_EQ(report.history.size(), 2U);
  // Global batch 4 over 7 subjects: ceil(7/4) = 2 steps/epoch.
  EXPECT_EQ(report.history.front().steps, 2);
}

TEST_F(PipelineTest, RunExperimentParallelTunes) {
  DistMisPipeline pipeline(small_options());
  std::vector<ExperimentConfig> configs;
  for (double lr : {1e-2, 1e-3}) {
    ExperimentConfig cfg = tiny_config();
    cfg.lr = lr;
    configs.push_back(cfg);
  }
  const ray::TuneResult result =
      pipeline.run_experiment_parallel(configs, /*gpus=*/2);
  EXPECT_EQ(result.count(ray::TrialStatus::kTerminated), 2);
  EXPECT_NO_THROW(result.best("val_dice"));
}

TEST_F(PipelineTest, RejectsBadOptions) {
  PipelineOptions opts = small_options();
  opts.num_subjects = 5;
  EXPECT_THROW(DistMisPipeline{opts}, InvalidArgument);
  PipelineOptions no_dir = small_options();
  no_dir.work_dir.clear();
  EXPECT_THROW(DistMisPipeline{no_dir}, InvalidArgument);
}

}  // namespace
}  // namespace dmis::core
