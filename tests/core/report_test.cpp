#include "core/report.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/check.hpp"

namespace dmis::core {
namespace {

StudyResult sample_result() {
  StudyResult r;
  r.data_parallel = {{1, 1000.0, 990.0, 1010.0, 1.0},
                     {4, 300.0, 290.0, 310.0, 3.333}};
  r.experiment_parallel = {{1, 1000.0, 990.0, 1010.0, 1.0},
                           {4, 260.0, 250.0, 270.0, 3.846}};
  return r;
}

TEST(ReportTest, CsvRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("dmis_report_" + std::to_string(::getpid()) + ".csv");
  save_study_csv(path.string(), sample_result());
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "strategy,gpus,mean_s,min_s,max_s,speedup");
  int rows = 0;
  int dp = 0, ep = 0;
  while (std::getline(is, line)) {
    ++rows;
    dp += line.rfind("data_parallel,", 0) == 0;
    ep += line.rfind("experiment_parallel,", 0) == 0;
  }
  EXPECT_EQ(rows, 4);
  EXPECT_EQ(dp, 2);
  EXPECT_EQ(ep, 2);
  std::filesystem::remove(path);
}

TEST(ReportTest, CsvRejectsBadPath) {
  EXPECT_THROW(save_study_csv("/nonexistent/dir/x.csv", sample_result()),
               IoError);
}

TEST(ReportTest, HistoryCsvRoundTrip) {
  train::TrainReport report;
  train::EpochStats e0;
  e0.epoch = 0;
  e0.steps = 3;
  e0.train_loss = 0.75;
  e0.val_dice = 0.41;
  e0.lr = 1e-4;
  train::EpochStats e1 = e0;
  e1.epoch = 1;
  e1.train_loss = 0.5;
  e1.val_dice.reset();  // no validation that epoch
  report.history = {e0, e1};

  const auto path = std::filesystem::temp_directory_path() /
                    ("dmis_hist_" + std::to_string(::getpid()) + ".csv");
  save_history_csv(path.string(), report);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "epoch,steps,train_loss,val_dice,lr");
  std::getline(is, line);
  EXPECT_EQ(line.rfind("0,3,0.75,0.41,", 0), 0U);
  std::getline(is, line);
  EXPECT_NE(line.find(",,"), std::string::npos);  // empty val_dice cell
  std::filesystem::remove(path);
}

TEST(ReportTest, TuneTableRendersStatusesAndMetrics) {
  ray::TuneResult result;
  ray::Trial ok;
  ok.id = 0;
  ok.params = {{"lr", 1e-4}};
  ok.status = ray::TrialStatus::kTerminated;
  ok.iterations = 5;
  ok.last_metrics = {{"val_dice", 0.8912}};
  ray::Trial failed;
  failed.id = 1;
  failed.params = {{"lr", 1e-3}};
  failed.status = ray::TrialStatus::kError;
  failed.error = "NaN loss";
  result.trials = {ok, failed};

  const std::string table = tune_table(result);
  EXPECT_NE(table.find("TERMINATED"), std::string::npos);
  EXPECT_NE(table.find("0.8912"), std::string::npos);
  EXPECT_NE(table.find("ERROR"), std::string::npos);
  EXPECT_NE(table.find("NaN loss"), std::string::npos);
  EXPECT_NE(table.find("lr=0.0001"), std::string::npos);
  EXPECT_NE(table.find("attempts"), std::string::npos);
  EXPECT_NE(table.find("transient"), std::string::npos);
  EXPECT_NE(table.find("straggler"), std::string::npos);
}

TEST(ReportTest, TuneTableShowsStragglerRatio) {
  ray::TuneResult result;
  ray::Trial steady;
  steady.id = 0;
  steady.params = {{"lr", 1e-4}};
  steady.status = ray::TrialStatus::kTerminated;
  steady.straggler_ratio = 1.08;
  steady.last_metrics = {{"val_dice", 0.8}};
  ray::Trial fresh;  // too few reports for a ratio -> "-"
  fresh.id = 1;
  fresh.params = {{"lr", 1e-3}};
  fresh.status = ray::TrialStatus::kTerminated;
  fresh.last_metrics = {{"val_dice", 0.7}};
  result.trials = {steady, fresh};

  const std::string table = tune_table(result);
  EXPECT_NE(table.find("1.08"), std::string::npos) << table;
  EXPECT_NE(table.find("-"), std::string::npos) << table;
}

TEST(ReportTest, TuneTableShowsRetryAccounting) {
  ray::TuneResult result;
  ray::Trial retried;
  retried.id = 0;
  retried.params = {{"lr", 1e-4}};
  retried.status = ray::TrialStatus::kTerminated;
  retried.iterations = 4;
  retried.attempts = 3;
  retried.transient_errors = {"crash A", "crash B"};
  retried.last_metrics = {{"val_dice", 0.75}};
  ray::Trial exhausted;
  exhausted.id = 1;
  exhausted.params = {{"lr", 1e-3}};
  exhausted.status = ray::TrialStatus::kFailed;
  exhausted.attempts = 3;
  exhausted.transient_errors = {"crash", "crash"};
  exhausted.error = "crash again";
  result.trials = {retried, exhausted};

  const std::string table = tune_table(result);
  // The retried trial shows 3 attempts / 2 transient errors.
  EXPECT_NE(table.find("3         2"), std::string::npos) << table;
  // A retry-exhausted trial surfaces its final error.
  EXPECT_NE(table.find("FAILED"), std::string::npos);
  EXPECT_NE(table.find("error: crash again"), std::string::npos);
}

TEST(ReportTest, TuneCsvQuotesConfigs) {
  ray::TuneResult result;
  ray::Trial t;
  t.id = 2;
  t.params = {{"lr", 1e-4}, {"loss", std::string("dice")}};
  t.status = ray::TrialStatus::kTerminated;
  t.iterations = 7;
  t.attempts = 2;
  t.transient_errors = {"preempted"};
  t.last_metrics = {{"val_dice", 0.91}};
  result.trials = {t};
  const auto path = std::filesystem::temp_directory_path() /
                    ("dmis_tunecsv_" + std::to_string(::getpid()) + ".csv");
  save_tune_csv(path.string(), result);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "id,config,status,iterations,attempts,transient_errors,"
            "straggler_ratio,val_dice");
  std::getline(is, line);
  // The config contains a comma, so it must be quoted.
  EXPECT_NE(line.find("\"loss=dice, lr=0.0001\""), std::string::npos);
  EXPECT_NE(line.find("TERMINATED,7,2,1,0,0.91"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ReportTest, TuneTableHandlesMissingMetric) {
  ray::TuneResult result;
  ray::Trial silent;
  silent.id = 0;
  silent.status = ray::TrialStatus::kTerminated;
  result.trials = {silent};
  const std::string table = tune_table(result);
  EXPECT_NE(table.find("-"), std::string::npos);
}

}  // namespace
}  // namespace dmis::core
