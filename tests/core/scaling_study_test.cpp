#include "core/scaling_study.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/hp_space.hpp"

namespace dmis::core {
namespace {

ScalingStudy make_study() {
  const cluster::CostModel cost(cluster::ClusterSpec::marenostrum_cte());
  return ScalingStudy(cost, HpSpace::expand(HpSpace::paper(), cost));
}

StudyOptions fast_options() {
  StudyOptions opts;
  opts.repetitions = 1;
  return opts;
}

TEST(ScalingStudyTest, SingleGpuBaselineNearPaper) {
  // Calibration check: the 32-experiment search on one V100 must land
  // near the paper's 44h20m (within 10%).
  const ScalingStudy study = make_study();
  const double t = study.run_experiment_parallel_once(1, fast_options(), 0);
  const double paper = 44.0 * 3600 + 20 * 60 + 19;
  EXPECT_NEAR(t, paper, 0.10 * paper);
}

TEST(ScalingStudyTest, ExperimentParallelBeatsDataParallel) {
  const ScalingStudy study = make_study();
  StudyOptions opts = fast_options();
  // The paper's protocol: three repetitions averaged. A single
  // repetition can catch an unlucky straggler draw in the EP
  // single-wave case, just like one real run could.
  opts.repetitions = 3;
  opts.gpu_counts = {1, 4, 32};
  const StudyResult result = study.run(opts);
  ASSERT_EQ(result.data_parallel.size(), 3U);
  ASSERT_EQ(result.experiment_parallel.size(), 3U);
  for (size_t i = 1; i < result.data_parallel.size(); ++i) {
    EXPECT_GT(result.experiment_parallel[i].speedup,
              result.data_parallel[i].speedup)
        << "n=" << result.data_parallel[i].gpus;
  }
}

TEST(ScalingStudyTest, SpeedupsMonotoneAndSublinear) {
  const ScalingStudy study = make_study();
  StudyOptions opts = fast_options();
  const StudyResult result = study.run(opts);
  const auto check = [](const std::vector<StudyCell>& cells) {
    double prev = 0.0;
    for (const StudyCell& c : cells) {
      EXPECT_GT(c.speedup, prev) << "n=" << c.gpus;
      EXPECT_LE(c.speedup, static_cast<double>(c.gpus) + 1e-9)
          << "n=" << c.gpus;
      prev = c.speedup;
    }
  };
  check(result.data_parallel);
  check(result.experiment_parallel);
}

TEST(ScalingStudyTest, DeterministicPerSeed) {
  const ScalingStudy study = make_study();
  StudyOptions opts = fast_options();
  const double a = study.run_experiment_parallel_once(8, opts, 0);
  const double b = study.run_experiment_parallel_once(8, opts, 0);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = study.run_experiment_parallel_once(8, opts, 1);
  EXPECT_NE(a, c);  // repetitions differ (jitter/stragglers)
}

TEST(ScalingStudyTest, MinMaxBracketMean) {
  const ScalingStudy study = make_study();
  StudyOptions opts;
  opts.repetitions = 3;
  opts.gpu_counts = {1, 8};
  const StudyResult result = study.run(opts);
  for (const auto& cells :
       {result.data_parallel, result.experiment_parallel}) {
    for (const StudyCell& c : cells) {
      EXPECT_LE(c.min_seconds, c.mean_seconds);
      EXPECT_LE(c.mean_seconds, c.max_seconds);
    }
  }
}

TEST(ScalingStudyTest, LptNotWorseThanFifo) {
  const ScalingStudy study = make_study();
  StudyOptions fifo = fast_options();
  StudyOptions lpt = fast_options();
  lpt.policy = cluster::SchedulePolicy::kLpt;
  for (int n : {8, 16, 32}) {
    const double t_fifo = study.run_experiment_parallel_once(n, fifo, 0);
    const double t_lpt = study.run_experiment_parallel_once(n, lpt, 0);
    EXPECT_LE(t_lpt, t_fifo + 1e-6) << "n=" << n;
  }
}

TEST(ScalingStudyTest, RejectsBadOptions) {
  const ScalingStudy study = make_study();
  StudyOptions opts;
  opts.gpu_counts = {2, 4};  // must start at 1
  EXPECT_THROW(study.run(opts), InvalidArgument);
  StudyOptions no_reps;
  no_reps.repetitions = 0;
  EXPECT_THROW(study.run(no_reps), InvalidArgument);
}

}  // namespace
}  // namespace dmis::core
