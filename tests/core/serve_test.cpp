#include "core/serve.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/check.hpp"
#include "data/phantom.hpp"
#include "data/transforms.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"

namespace dmis::core {
namespace {

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 4;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 3;
  return opts;
}

TEST(SegmentationServiceTest, OutputsMatchInputGeometry) {
  SegmentationService service(tiny_model(), "");
  // Raw, uncropped, indivisible geometry — exactly what a user hands in.
  data::PhantomOptions popts;
  popts.depth = 9;
  popts.height = 11;
  popts.width = 13;
  const data::PhantomSubject s = data::PhantomGenerator(popts).generate(0);
  const SegmentationResult result = service.segment(s.image);
  EXPECT_EQ(result.mask.depth(), 9);
  EXPECT_EQ(result.mask.height(), 11);
  EXPECT_EQ(result.mask.width(), 13);
  EXPECT_EQ(result.probabilities.depth(), 9);
  for (int64_t i = 0; i < result.mask.tensor().numel(); ++i) {
    EXPECT_TRUE(result.mask.tensor()[i] == 0.0F ||
                result.mask.tensor()[i] == 1.0F);
    EXPECT_GE(result.probabilities.tensor()[i], 0.0F);
    EXPECT_LE(result.probabilities.tensor()[i], 1.0F);
  }
  EXPECT_EQ(result.tumor_voxels,
            static_cast<int64_t>(std::llround(result.mask.tensor().sum())));
}

TEST(SegmentationServiceTest, TrainedCheckpointSegmentsTumor) {
  // Train a tiny model on one phantom, checkpoint it, serve it through
  // the service, and check the mask overlaps the ground truth.
  data::PhantomOptions popts;
  popts.depth = 9;  // crops to 8 (divisor 2)
  popts.height = 8;
  popts.width = 8;
  const data::PhantomSubject subj = data::PhantomGenerator(popts).generate(1);
  const data::Example ex =
      data::preprocess_subject(subj.image, subj.labels, 1, 2);

  nn::UNet3d net(tiny_model());
  nn::SoftDiceLoss loss;
  nn::Adam opt(net.params(), 1e-2);
  Shape batched = Shape{1};
  for (int i = 0; i < ex.image.shape().rank(); ++i) {
    batched = batched.appended(ex.image.shape().dim(i));
  }
  NDArray x(batched, ex.image.span());
  Shape lbl_batched = Shape{1};
  for (int i = 0; i < ex.label.shape().rank(); ++i) {
    lbl_batched = lbl_batched.appended(ex.label.shape().dim(i));
  }
  NDArray y(lbl_batched, ex.label.span());
  for (int step = 0; step < 60; ++step) {
    opt.zero_grad();
    const NDArray& pred = net.forward(x, true);
    net.backward(loss.compute(pred, y).grad);
    opt.step();
  }

  const auto ckpt = std::filesystem::temp_directory_path() /
                    ("dmis_serve_" + std::to_string(::getpid()) + ".ckpt");
  nn::save_checkpoint(ckpt.string(), net.checkpoint_params());

  SegmentationService service(tiny_model(), ckpt.string());
  // Serve the RAW (uncropped 9-deep) volume.
  const SegmentationResult result = service.segment(subj.image);
  EXPECT_GT(result.tumor_voxels, 0);
  // Compare on the central 8 slices against ground truth.
  const data::Volume truth = data::join_labels_binary(
      data::center_crop(subj.labels, 8, 8, 8));
  const data::Volume mask_cropped =
      data::center_crop(result.mask, 8, 8, 8);
  EXPECT_GT(nn::dice_score(mask_cropped.tensor(), truth.tensor()), 0.5);
  std::filesystem::remove(ckpt);
}

TEST(SegmentationServiceTest, RejectsBadInputs) {
  SegmentationService service(tiny_model(), "");
  data::Volume wrong_channels(2, 8, 8, 8);
  EXPECT_THROW(service.segment(wrong_channels), InvalidArgument);
  data::Volume ok(4, 8, 8, 8);
  EXPECT_THROW(service.segment(ok, 0.0F), InvalidArgument);
  EXPECT_THROW(service.segment(ok, 1.0F), InvalidArgument);
  EXPECT_THROW(SegmentationService(tiny_model(), "/no/such/ckpt"), IoError);
}

TEST(SegmentationServiceTest, BadInputsThrowTypedErrors) {
  SegmentationService service(tiny_model(), "");
  data::Volume wrong_channels(2, 8, 8, 8);
  EXPECT_THROW(service.segment(wrong_channels), BadInputError);
  EXPECT_THROW(SegmentationService(tiny_model(), "/no/such/ckpt"),
               BackendError);
}

TEST(SegmentationServiceTest, RejectsDegenerateVolumes) {
  SegmentationService service(tiny_model(), "");
  data::PhantomOptions popts;
  popts.depth = 8;
  popts.height = 8;
  popts.width = 8;
  const data::PhantomGenerator gen(popts);

  // A NaN voxel would flow through standardization into NaN
  // probabilities everywhere; the service must refuse it up front.
  data::Volume nan_volume = gen.generate(0).image;
  nan_volume.at(1, 2, 3, 4) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(service.segment(nan_volume), BadInputError);

  data::Volume inf_volume = gen.generate(1).image;
  inf_volume.at(0, 0, 0, 0) = std::numeric_limits<float>::infinity();
  EXPECT_THROW(service.segment(inf_volume), BadInputError);

  // A constant channel (e.g. a dead acquisition) carries no signal.
  data::Volume flat_channel = gen.generate(2).image;
  float* data = flat_channel.tensor().data() +
                2 * flat_channel.voxels_per_channel();
  std::fill(data, data + flat_channel.voxels_per_channel(), 7.5F);
  EXPECT_THROW(service.segment(flat_channel), BadInputError);

  // The guard is a policy, not a hard precondition.
  SegmentOptions permissive;
  permissive.reject_degenerate = false;
  EXPECT_NO_THROW(service.segment(flat_channel, permissive));
}

TEST(SegmentationServiceTest, CorruptCheckpointIsBackendError) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("dmis_serve_bad_" + std::to_string(::getpid()) + ".ckpt");
  {
    std::ofstream out(path);
    out << "not a checkpoint";
  }
  EXPECT_THROW(SegmentationService(tiny_model(), path.string()),
               BackendError);
  std::filesystem::remove(path);
}

TEST(SegmentationServiceTest, WeightSharingInstanceMatchesSourceBitwise) {
  data::PhantomOptions popts;
  popts.depth = 9;
  popts.height = 11;
  popts.width = 13;
  const data::PhantomSubject subj = data::PhantomGenerator(popts).generate(4);

  SegmentationService source(tiny_model(), "");
  SegmentationService sharer(tiny_model(), source);
  const SegmentationResult a = source.segment(subj.image);
  const SegmentationResult b = sharer.segment(subj.image);
  ASSERT_EQ(a.probabilities.tensor().numel(), b.probabilities.tensor().numel());
  for (int64_t i = 0; i < a.probabilities.tensor().numel(); ++i) {
    ASSERT_EQ(a.probabilities.tensor()[i], b.probabilities.tensor()[i]);
  }
  EXPECT_EQ(a.tumor_voxels, b.tumor_voxels);
}

TEST(SegmentationServiceTest, SlidingWindowModeMatchesFullVolume) {
  data::PhantomOptions popts;
  popts.depth = 9;
  popts.height = 11;
  popts.width = 13;
  const data::PhantomSubject subj = data::PhantomGenerator(popts).generate(5);
  SegmentationService service(tiny_model(), "");

  const SegmentationResult full = service.segment(subj.image);

  // Force patch mode with a tiny budget; a patch covering the whole
  // volume makes the two modes agree bitwise.
  SegmentOptions opts;
  opts.full_volume_voxel_budget = 8;
  opts.sliding_window.patch_depth = 64;
  opts.sliding_window.patch_height = 64;
  opts.sliding_window.patch_width = 64;
  int hook_calls = 0;
  opts.progress_hook = [&hook_calls] { ++hook_calls; };
  const SegmentationResult tiled = service.segment(subj.image, opts);
  EXPECT_GE(hook_calls, 1);
  for (int64_t i = 0; i < full.probabilities.tensor().numel(); ++i) {
    ASSERT_EQ(full.probabilities.tensor()[i], tiled.probabilities.tensor()[i]);
  }
  for (int64_t i = 0; i < full.mask.tensor().numel(); ++i) {
    ASSERT_EQ(full.mask.tensor()[i], tiled.mask.tensor()[i]);
  }
}

}  // namespace
}  // namespace dmis::core
