#include "data/augment.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis::data {
namespace {

Example make_example(int64_t id) {
  Example ex;
  ex.id = id;
  ex.image = NDArray(Shape{2, 2, 3, 4});
  ex.label = NDArray(Shape{1, 2, 3, 4});
  for (int64_t i = 0; i < ex.image.numel(); ++i) {
    ex.image[i] = static_cast<float>(i);
  }
  for (int64_t i = 0; i < ex.label.numel(); ++i) {
    ex.label[i] = i % 3 == 0 ? 1.0F : 0.0F;
  }
  return ex;
}

TEST(FlipTensorTest, WidthFlipReversesRows) {
  NDArray t(Shape{1, 1, 1, 4}, std::vector<float>{1, 2, 3, 4});
  flip_tensor(t, false, false, true);
  EXPECT_FLOAT_EQ(t[0], 4.0F);
  EXPECT_FLOAT_EQ(t[3], 1.0F);
}

TEST(FlipTensorTest, DoubleFlipIsIdentity) {
  Example ex = make_example(0);
  NDArray orig = ex.image;
  flip_tensor(ex.image, true, true, true);
  flip_tensor(ex.image, true, true, true);
  EXPECT_TRUE(ex.image.allclose(orig, 0.0F));
}

TEST(FlipTensorTest, NoFlagsIsNoop) {
  Example ex = make_example(0);
  NDArray orig = ex.image;
  flip_tensor(ex.image, false, false, false);
  EXPECT_TRUE(ex.image.allclose(orig, 0.0F));
}

TEST(FlipTensorTest, RejectsWrongRank) {
  NDArray t(Shape{2, 2});
  EXPECT_THROW(flip_tensor(t, false, false, true), InvalidArgument);
}

TEST(AugmentTest, DeterministicPerSeedAndId) {
  AugmentOptions opts;
  opts.noise_sigma = 0.05;
  const Example a = augment(make_example(5), opts, 42);
  const Example b = augment(make_example(5), opts, 42);
  EXPECT_TRUE(a.image.allclose(b.image, 0.0F));
  EXPECT_TRUE(a.label.allclose(b.label, 0.0F));
}

TEST(AugmentTest, DifferentIdsAugmentDifferently) {
  AugmentOptions opts;
  opts.noise_sigma = 0.05;
  const Example a = augment(make_example(1), opts, 42);
  const Example b = augment(make_example(2), opts, 42);
  EXPECT_FALSE(a.image.allclose(b.image, 1e-6F));
}

TEST(AugmentTest, GeometryAppliedIdenticallyToImageAndMask) {
  // With flips certain (prob 1) and no intensity change, a copy of the
  // mask placed in the image channel must transform exactly like the
  // mask itself.
  AugmentOptions opts;
  opts.flip_w_prob = 1.0;
  opts.flip_h_prob = 1.0;
  opts.flip_d_prob = 1.0;
  opts.intensity_shift = 0.0;
  opts.intensity_scale = 0.0;

  Example ex;
  ex.id = 3;
  ex.label = NDArray(Shape{1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) ex.label[i] = i % 2 ? 1.0F : 0.0F;
  ex.image = ex.label;  // same payload

  const Example out = augment(std::move(ex), opts, 7);
  EXPECT_TRUE(out.image.allclose(out.label, 0.0F));
  // And the flip actually happened.
  EXPECT_FLOAT_EQ(out.label[0], 1.0F);
}

TEST(AugmentTest, MaskStaysBinary) {
  AugmentOptions opts;
  opts.noise_sigma = 0.2;  // image noise must not leak into the mask
  const Example out = augment(make_example(9), opts, 11);
  for (int64_t i = 0; i < out.label.numel(); ++i) {
    EXPECT_TRUE(out.label[i] == 0.0F || out.label[i] == 1.0F);
  }
}

TEST(AugmentTest, IntensityOnlyPreservesGeometry) {
  AugmentOptions opts;
  opts.flip_w_prob = 0.0;
  opts.flip_h_prob = 0.0;
  opts.intensity_shift = 0.5;
  opts.intensity_scale = 0.0;
  const Example in = make_example(4);
  const Example out = augment(make_example(4), opts, 3);
  // Same ordering (monotone shift), different values.
  EXPECT_FALSE(out.image.allclose(in.image, 1e-3F));
  EXPECT_TRUE(out.label.allclose(in.label, 0.0F));
  // Per-channel constant shift: adjacent deltas preserved.
  EXPECT_NEAR(out.image[1] - out.image[0], in.image[1] - in.image[0], 1e-4F);
}

TEST(AugmentTest, RejectsBadOptions) {
  AugmentOptions opts;
  opts.flip_w_prob = 1.5;
  EXPECT_THROW(augment(make_example(0), opts, 1), InvalidArgument);
  AugmentOptions neg;
  neg.noise_sigma = -1.0;
  EXPECT_THROW(augment(make_example(0), neg, 1), InvalidArgument);
}

}  // namespace
}  // namespace dmis::data
