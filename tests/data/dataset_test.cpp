#include "data/dataset.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>

#include "common/check.hpp"
#include "data/record.hpp"

namespace dmis::data {
namespace {

Example tiny_example(int64_t id, float fill = 0.0F) {
  Example ex;
  ex.id = id;
  ex.image = NDArray(Shape{1, 2, 2, 2}, fill == 0.0F
                                            ? static_cast<float>(id)
                                            : fill);
  ex.label = NDArray(Shape{1, 2, 2, 2}, id % 2 == 0 ? 1.0F : 0.0F);
  return ex;
}

std::vector<Example> tiny_examples(int64_t n) {
  std::vector<Example> v;
  for (int64_t i = 0; i < n; ++i) v.push_back(tiny_example(i));
  return v;
}

std::vector<int64_t> drain_ids(ExampleStream& s) {
  std::vector<int64_t> ids;
  while (auto e = s.next()) ids.push_back(e->id);
  return ids;
}

TEST(VectorStreamTest, EmitsInOrderAndResets) {
  auto s = from_examples(tiny_examples(4));
  EXPECT_EQ(s->size_hint(), 4);
  EXPECT_EQ(drain_ids(*s), (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_FALSE(s->next().has_value());
  s->reset();
  EXPECT_EQ(drain_ids(*s), (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(MapStreamTest, AppliesFunctionInOrder) {
  auto s = map(from_examples(tiny_examples(5)), [](Example e) {
    e.id += 100;
    return e;
  });
  EXPECT_EQ(drain_ids(*s), (std::vector<int64_t>{100, 101, 102, 103, 104}));
}

TEST(MapStreamTest, ParallelWorkersPreserveOrder) {
  auto s = map(
      from_examples(tiny_examples(23)),
      [](Example e) {
        e.image.scale_(2.0F);
        return e;
      },
      4);
  std::vector<int64_t> ids = drain_ids(*s);
  ASSERT_EQ(ids.size(), 23U);
  for (int64_t i = 0; i < 23; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i);
}

TEST(MapStreamTest, ResetRewinds) {
  auto s = map(from_examples(tiny_examples(3)), [](Example e) { return e; },
               2);
  EXPECT_EQ(drain_ids(*s).size(), 3U);
  s->reset();
  EXPECT_EQ(drain_ids(*s).size(), 3U);
}

TEST(ShuffleStreamTest, EmitsPermutation) {
  auto s = shuffle(from_examples(tiny_examples(20)), 8, 42);
  const auto ids = drain_ids(*s);
  ASSERT_EQ(ids.size(), 20U);
  const std::set<int64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 20U);
  EXPECT_NE(ids, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                       12, 13, 14, 15, 16, 17, 18, 19}));
}

TEST(ShuffleStreamTest, EpochsDiffer) {
  auto s = shuffle(from_examples(tiny_examples(16)), 16, 7);
  const auto first = drain_ids(*s);
  s->reset();
  const auto second = drain_ids(*s);
  ASSERT_EQ(second.size(), 16U);
  EXPECT_NE(first, second);
}

TEST(ShuffleStreamTest, BufferOneIsIdentity) {
  auto s = shuffle(from_examples(tiny_examples(6)), 1, 1);
  EXPECT_EQ(drain_ids(*s), (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(PrefetchStreamTest, DeliversAllElements) {
  auto s = prefetch(from_examples(tiny_examples(50)), 4);
  const auto ids = drain_ids(*s);
  ASSERT_EQ(ids.size(), 50U);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i);
}

TEST(PrefetchStreamTest, ResetRestartsEpoch) {
  auto s = prefetch(from_examples(tiny_examples(10)), 2);
  EXPECT_EQ(drain_ids(*s).size(), 10U);
  s->reset();
  EXPECT_EQ(drain_ids(*s).size(), 10U);
}

TEST(PrefetchStreamTest, PropagatesUpstreamErrors) {
  class ThrowingStream final : public ExampleStream {
   public:
    std::optional<Example> next() override {
      throw IoError("simulated read failure");
    }
    void reset() override {}
  };
  auto s = prefetch(std::make_unique<ThrowingStream>(), 2);
  EXPECT_THROW(s->next(), IoError);
}

TEST(TakeStreamTest, Truncates) {
  auto s = take(from_examples(tiny_examples(10)), 3);
  EXPECT_EQ(drain_ids(*s).size(), 3U);
  EXPECT_EQ(s->size_hint(), 3);
  s->reset();
  EXPECT_EQ(drain_ids(*s).size(), 3U);
}

TEST(BatchStreamTest, StacksExamples) {
  BatchStream batches(from_examples(tiny_examples(5)), 2);
  auto b1 = batches.next();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->size(), 2);
  EXPECT_EQ(b1->images.shape(), (Shape{2, 1, 2, 2, 2}));
  EXPECT_EQ(b1->labels.shape(), (Shape{2, 1, 2, 2, 2}));
  EXPECT_EQ(b1->ids, (std::vector<int64_t>{0, 1}));
  // Image data slots preserved.
  EXPECT_FLOAT_EQ(b1->images[8], 1.0F);  // second example filled with id=1

  auto b2 = batches.next();
  auto b3 = batches.next();
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(b3->size(), 1);  // ragged remainder kept (ceil semantics)
  EXPECT_FALSE(batches.next().has_value());
}

TEST(BatchStreamTest, DropRemainder) {
  BatchStream batches(from_examples(tiny_examples(5)), 2, true);
  EXPECT_TRUE(batches.next().has_value());
  EXPECT_TRUE(batches.next().has_value());
  EXPECT_FALSE(batches.next().has_value());
}

TEST(BatchStreamTest, CountsMatchPaperCeilRule) {
  // The paper's steps/epoch = ceil(N / batch): 5 examples, batch 2 -> 3.
  BatchStream batches(from_examples(tiny_examples(5)), 2);
  int steps = 0;
  while (batches.next()) ++steps;
  EXPECT_EQ(steps, 3);
  batches.reset();
  steps = 0;
  while (batches.next()) ++steps;
  EXPECT_EQ(steps, 3);
}

class RecordPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dmis_ds_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    // Three shard files with 3, 2, 4 records.
    int64_t id = 0;
    for (int f = 0; f < 3; ++f) {
      const std::string path =
          (dir_ / ("shard" + std::to_string(f) + ".drec")).string();
      RecordWriter w(path);
      const int counts[3] = {3, 2, 4};
      for (int i = 0; i < counts[f]; ++i) {
        w.write(Record::from_example(tiny_example(id++)));
      }
      paths_.push_back(path);
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::vector<std::string> paths_;
};

TEST_F(RecordPipelineTest, SequentialReadSeesAllRecords) {
  auto s = from_record_files(paths_);
  const auto ids = drain_ids(*s);
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
  s->reset();
  EXPECT_EQ(drain_ids(*s).size(), 9U);
}

TEST_F(RecordPipelineTest, InterleaveRoundRobinsAcrossFiles) {
  auto s = interleave_record_files(paths_, 3);
  const auto ids = drain_ids(*s);
  ASSERT_EQ(ids.size(), 9U);
  // First three elements come from distinct files: ids 0, 3, 5.
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 3);
  EXPECT_EQ(ids[2], 5);
  // Everything is seen exactly once.
  const std::set<int64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 9U);
}

TEST_F(RecordPipelineTest, InterleaveCycleSmallerThanFiles) {
  auto s = interleave_record_files(paths_, 2);
  const auto ids = drain_ids(*s);
  const std::set<int64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 9U);
}

TEST_F(RecordPipelineTest, FullPipelineComposition) {
  // interleave -> map -> shuffle -> prefetch -> batch, two epochs.
  auto stream = prefetch(
      shuffle(map(interleave_record_files(paths_, 2),
                  [](Example e) {
                    e.image.scale_(0.5F);
                    return e;
                  },
                  2),
              4, 99),
      2);
  BatchStream batches(std::move(stream), 4);
  for (int epoch = 0; epoch < 2; ++epoch) {
    int64_t seen = 0;
    std::set<int64_t> ids;
    while (auto b = batches.next()) {
      seen += b->size();
      ids.insert(b->ids.begin(), b->ids.end());
    }
    EXPECT_EQ(seen, 9);
    EXPECT_EQ(ids.size(), 9U);
    batches.reset();
  }
}

}  // namespace
}  // namespace dmis::data
