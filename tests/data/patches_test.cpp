#include "data/patches.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace dmis::data {
namespace {

Example make_example(int64_t id = 7) {
  Example ex;
  ex.id = id;
  ex.image = NDArray(Shape{2, 8, 10, 12});
  ex.label = NDArray(Shape{1, 8, 10, 12});
  for (int64_t i = 0; i < ex.image.numel(); ++i) {
    ex.image[i] = static_cast<float>(i % 97) * 0.01F;
  }
  // Tumor in one corner block.
  for (int64_t z = 0; z < 3; ++z) {
    for (int64_t y = 0; y < 3; ++y) {
      for (int64_t x = 0; x < 3; ++x) {
        ex.label[(z * 10 + y) * 12 + x] = 1.0F;
      }
    }
  }
  return ex;
}

PatchOptions small_patches() {
  PatchOptions o;
  o.size_d = 4;
  o.size_h = 4;
  o.size_w = 4;
  o.patches_per_subject = 6;
  return o;
}

TEST(SamplePatchesTest, GeometryAndCount) {
  const auto patches = sample_patches(make_example(), small_patches(), 1);
  ASSERT_EQ(patches.size(), 6U);
  for (const Example& p : patches) {
    EXPECT_EQ(p.image.shape(), (Shape{2, 4, 4, 4}));
    EXPECT_EQ(p.label.shape(), (Shape{1, 4, 4, 4}));
  }
}

TEST(SamplePatchesTest, DeterministicAndIdEncoded) {
  const auto a = sample_patches(make_example(), small_patches(), 5);
  const auto b = sample_patches(make_example(), small_patches(), 5);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].image.allclose(b[i].image, 0.0F));
    EXPECT_EQ(a[i].id, 7 * 1000 + static_cast<int64_t>(i));
  }
  const auto c = sample_patches(make_example(), small_patches(), 6);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= !a[i].image.allclose(c[i].image, 0.0F);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SamplePatchesTest, ForegroundBiasFindsTumor) {
  PatchOptions o = small_patches();
  o.foreground_bias = 1.0;
  o.patches_per_subject = 12;
  const auto patches = sample_patches(make_example(), o, 3);
  int with_tumor = 0;
  for (const Example& p : patches) {
    with_tumor += p.label.sum() > 0.0;
  }
  // The tumor block occupies a tiny corner; biased sampling must hit it
  // in the overwhelming majority of draws.
  EXPECT_GE(with_tumor, 10);
}

TEST(SamplePatchesTest, TumorFreeSubjectDoesNotHang) {
  Example empty = make_example();
  empty.label.zero();
  PatchOptions o = small_patches();
  o.foreground_bias = 1.0;
  EXPECT_NO_THROW(sample_patches(empty, o, 1));
}

TEST(SamplePatchesTest, RejectsOversizedPatch) {
  PatchOptions o = small_patches();
  o.size_d = 100;
  EXPECT_THROW(sample_patches(make_example(), o, 1), InvalidArgument);
}

TEST(TileExampleTest, CoversEveryVoxel) {
  const Example ex = make_example();
  const auto tiles = tile_example(ex, small_patches());
  // Mark coverage.
  NDArray covered(Shape{1, 8, 10, 12});
  for (const TiledPatch& t : tiles) {
    for (int64_t z = 0; z < 4; ++z) {
      for (int64_t y = 0; y < 4; ++y) {
        for (int64_t x = 0; x < 4; ++x) {
          covered[((t.z0 + z) * 10 + t.y0 + y) * 12 + t.x0 + x] = 1.0F;
        }
      }
    }
  }
  EXPECT_DOUBLE_EQ(covered.sum(), 8.0 * 10.0 * 12.0);
}

TEST(TileExampleTest, OverlapIncreasesTileCount) {
  const Example ex = make_example();
  const auto plain = tile_example(ex, small_patches(), 0);
  const auto overlapped = tile_example(ex, small_patches(), 2);
  EXPECT_GT(overlapped.size(), plain.size());
}

TEST(StitchPatchesTest, IdentityRoundTrip) {
  // Stitching the ground-truth label tiles must reproduce the label map
  // exactly (overlap-averaging of identical values).
  const Example ex = make_example();
  const auto tiles = tile_example(ex, small_patches(), 2);
  std::vector<NDArray> preds;
  preds.reserve(tiles.size());
  for (const TiledPatch& t : tiles) preds.push_back(t.patch.label);
  const NDArray stitched =
      stitch_patches(tiles, preds, Shape{1, 8, 10, 12});
  EXPECT_TRUE(stitched.allclose(ex.label, 1e-6F));
}

TEST(StitchPatchesTest, RejectsMismatchedCounts) {
  const Example ex = make_example();
  const auto tiles = tile_example(ex, small_patches());
  std::vector<NDArray> preds;  // empty
  EXPECT_THROW(stitch_patches(tiles, preds, Shape{1, 8, 10, 12}),
               InvalidArgument);
}

}  // namespace
}  // namespace dmis::data
