#include "data/phantom.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace dmis::data {
namespace {

TEST(PhantomTest, GeometryMatchesOptions) {
  PhantomOptions opts;
  opts.depth = 11;
  opts.height = 16;
  opts.width = 12;
  PhantomGenerator gen(opts);
  const PhantomSubject s = gen.generate(0);
  EXPECT_EQ(s.image.channels(), 4);
  EXPECT_EQ(s.image.depth(), 11);
  EXPECT_EQ(s.image.height(), 16);
  EXPECT_EQ(s.image.width(), 12);
  EXPECT_EQ(s.labels.channels(), 1);
  EXPECT_EQ(s.labels.depth(), 11);
}

TEST(PhantomTest, DeterministicPerSubject) {
  PhantomGenerator gen;
  const PhantomSubject a = gen.generate(7);
  const PhantomSubject b = gen.generate(7);
  EXPECT_TRUE(a.image.tensor().allclose(b.image.tensor(), 0.0F));
  EXPECT_TRUE(a.labels.tensor().allclose(b.labels.tensor(), 0.0F));
}

TEST(PhantomTest, SubjectsDiffer) {
  PhantomGenerator gen;
  const PhantomSubject a = gen.generate(0);
  const PhantomSubject b = gen.generate(1);
  EXPECT_FALSE(a.image.tensor().allclose(b.image.tensor(), 1e-3F));
}

TEST(PhantomTest, LabelsAreValidMsdClasses) {
  PhantomGenerator gen;
  const PhantomSubject s = gen.generate(3);
  std::set<int> seen;
  for (int64_t i = 0; i < s.labels.tensor().numel(); ++i) {
    const int cls = static_cast<int>(s.labels.tensor()[i]);
    ASSERT_GE(cls, 0);
    ASSERT_LE(cls, 3);
    seen.insert(cls);
  }
  EXPECT_TRUE(seen.count(0) == 1);     // background always present
  EXPECT_GE(seen.size(), 2U);          // some tumor tissue exists
}

TEST(PhantomTest, TumorIsMinorityClass) {
  // The paper motivates the Dice loss with heavy class imbalance; the
  // phantoms must preserve that property.
  PhantomGenerator gen;
  const PhantomSubject s = gen.generate(5);
  int64_t tumor = 0;
  const int64_t total = s.labels.tensor().numel();
  for (int64_t i = 0; i < total; ++i) {
    if (s.labels.tensor()[i] > 0.0F) ++tumor;
  }
  EXPECT_GT(tumor, 0);
  EXPECT_LT(static_cast<double>(tumor) / static_cast<double>(total), 0.35);
}

TEST(PhantomTest, ModalityContrastsDiffer) {
  PhantomGenerator gen;
  const PhantomSubject s = gen.generate(2);
  // FLAIR and T1w must produce different channel means (different tissue
  // contrasts), otherwise the 4 channels carry no distinct information.
  const int64_t per = s.image.voxels_per_channel();
  double means[4] = {0, 0, 0, 0};
  for (int64_t c = 0; c < 4; ++c) {
    for (int64_t i = 0; i < per; ++i) {
      means[c] += s.image.tensor()[c * per + i];
    }
    means[c] /= static_cast<double>(per);
  }
  EXPECT_GT(std::abs(means[0] - means[1]), 0.01);
}

TEST(PhantomTest, EnhancingCoreBrightInT1gd) {
  PhantomGenerator gen(PhantomOptions{.depth = 24, .height = 32, .width = 32,
                                      .seed = 5, .noise_sigma = 0.0F,
                                      .max_tumors = 1});
  const PhantomSubject s = gen.generate(1);
  double t1gd_enh = 0.0, t1w_enh = 0.0;
  int64_t count = 0;
  for (int64_t z = 0; z < 24; ++z) {
    for (int64_t y = 0; y < 32; ++y) {
      for (int64_t x = 0; x < 32; ++x) {
        if (static_cast<int>(s.labels.at(0, z, y, x)) == 3) {
          t1gd_enh += s.image.at(static_cast<int>(Modality::kT1gd), z, y, x);
          t1w_enh += s.image.at(static_cast<int>(Modality::kT1w), z, y, x);
          ++count;
        }
      }
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(t1gd_enh / count, t1w_enh / count + 0.3);  // gadolinium effect
}

TEST(PhantomTest, LateralizedTaskLabelsOnlyLeftTumor) {
  PhantomOptions opts;
  opts.depth = 16;
  opts.height = 16;
  opts.width = 32;
  opts.noise_sigma = 0.0F;
  opts.lateralized_task = true;
  const PhantomGenerator gen(opts);
  for (int64_t id = 0; id < 4; ++id) {
    const PhantomSubject s = gen.generate(id);
    // Labels confined to the left half of the width axis.
    int64_t left_label = 0, right_label = 0;
    // The image must carry tumor-bright voxels on BOTH sides (T1gd
    // channel, enhancing contrast 0.95 vs brain 0.70).
    int64_t right_bright = 0;
    for (int64_t z = 0; z < 16; ++z) {
      for (int64_t y = 0; y < 16; ++y) {
        for (int64_t x = 0; x < 32; ++x) {
          const bool label = s.labels.at(0, z, y, x) > 0.0F;
          if (label && x < 16) ++left_label;
          if (label && x >= 16) ++right_label;
          if (x >= 16 &&
              s.image.at(static_cast<int>(Modality::kT1gd), z, y, x) > 0.9F) {
            ++right_bright;
          }
        }
      }
    }
    EXPECT_GT(left_label, 0) << "subject " << id;
    // The labeled tumor is centered left; at most its edema halo may
    // graze the midline.
    EXPECT_LT(right_label, left_label / 4) << "subject " << id;
    EXPECT_GT(right_bright, 0) << "subject " << id
                               << " (distractor tumor missing)";
  }
}

TEST(PhantomTest, RejectsBadOptions) {
  PhantomOptions bad;
  bad.depth = 2;
  EXPECT_THROW(PhantomGenerator{bad}, InvalidArgument);
  PhantomOptions neg;
  neg.noise_sigma = -1.0F;
  EXPECT_THROW(PhantomGenerator{neg}, InvalidArgument);
}

TEST(PhantomTest, PaperScaleGeometry) {
  const PhantomOptions o = PhantomOptions::paper_scale();
  EXPECT_EQ(o.depth, 155);
  EXPECT_EQ(o.height, 240);
  EXPECT_EQ(o.width, 240);
}

TEST(PhantomTest, NegativeIdThrows) {
  PhantomGenerator gen;
  EXPECT_THROW(gen.generate(-1), InvalidArgument);
}

}  // namespace
}  // namespace dmis::data
