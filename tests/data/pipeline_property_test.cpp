// Property sweep over pipeline compositions: any stack of stages must
// deliver exactly the source multiset of examples, once per epoch,
// across multiple epochs — shuffled or not, parallel or not, prefetched
// or not.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "data/dataset.hpp"

namespace dmis::data {
namespace {

Example tiny_example(int64_t id) {
  Example ex;
  ex.id = id;
  ex.image = NDArray(Shape{1, 2, 2, 2}, static_cast<float>(id));
  ex.label = NDArray(Shape{1, 2, 2, 2}, id % 2 == 0 ? 1.0F : 0.0F);
  return ex;
}

std::vector<Example> tiny_examples(int64_t n) {
  std::vector<Example> v;
  for (int64_t i = 0; i < n; ++i) v.push_back(tiny_example(i));
  return v;
}

// (use_map, map_workers, use_shuffle, use_prefetch)
using PipelineConfig = std::tuple<bool, int, bool, bool>;

class PipelineCompositionTest
    : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(PipelineCompositionTest, DeliversExactMultisetPerEpoch) {
  const auto [use_map, map_workers, use_shuffle, use_prefetch] = GetParam();
  constexpr int64_t kN = 13;

  StreamPtr s = from_examples(tiny_examples(kN));
  if (use_map) {
    s = map(
        std::move(s),
        [](Example e) {
          e.image.scale_(2.0F);
          return e;
        },
        map_workers);
  }
  if (use_shuffle) s = shuffle(std::move(s), 5, 77);
  if (use_prefetch) s = prefetch(std::move(s), 3);

  for (int epoch = 0; epoch < 3; ++epoch) {
    std::multiset<int64_t> seen;
    while (auto e = s->next()) {
      seen.insert(e->id);
      if (use_map) {
        // The transform was applied exactly once.
        EXPECT_FLOAT_EQ(e->image[0], 2.0F * static_cast<float>(e->id));
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kN)) << "epoch " << epoch;
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(seen.count(i), 1U) << "id " << i << " epoch " << epoch;
    }
    s->reset();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Compositions, PipelineCompositionTest,
    ::testing::Values(PipelineConfig{false, 1, false, false},
                      PipelineConfig{true, 1, false, false},
                      PipelineConfig{true, 4, false, false},
                      PipelineConfig{false, 1, true, false},
                      PipelineConfig{false, 1, false, true},
                      PipelineConfig{true, 2, true, false},
                      PipelineConfig{true, 2, false, true},
                      PipelineConfig{false, 1, true, true},
                      PipelineConfig{true, 4, true, true}),
    [](const ::testing::TestParamInfo<PipelineConfig>& info) {
      // (no structured bindings here: the brackets' commas would split
      // the macro arguments)
      std::string name = std::get<0>(info.param)
                             ? "map" + std::to_string(std::get<1>(info.param))
                             : "nomap";
      name += std::get<2>(info.param) ? "_shuffle" : "_ordered";
      name += std::get<3>(info.param) ? "_prefetch" : "_direct";
      return name;
    });

// Batch-size sweep: ceil semantics and content preservation for every
// (dataset size, batch size) pair.
class BatchSweepTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(BatchSweepTest, CeilStepsAndAllIdsPresent) {
  const auto [n, batch] = GetParam();
  BatchStream batches(from_examples(tiny_examples(n)), batch);
  int64_t steps = 0;
  std::multiset<int64_t> ids;
  while (auto b = batches.next()) {
    ++steps;
    EXPECT_LE(b->size(), batch);
    ids.insert(b->ids.begin(), b->ids.end());
  }
  EXPECT_EQ(steps, (n + batch - 1) / batch);
  EXPECT_EQ(ids.size(), static_cast<size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BatchSweepTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 5, 8, 13),
                       ::testing::Values<int64_t>(1, 2, 3, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int64_t, int64_t>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dmis::data
