#include "data/record.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "data/crc32c.hpp"
#include "tensor/rng.hpp"

namespace dmis::data {
namespace {

Record make_record(int64_t id, uint64_t seed) {
  Record r;
  r.id = id;
  NDArray img(Shape{2, 4, 4, 4});
  NDArray lbl(Shape{1, 4, 4, 4});
  Rng rng(seed);
  for (int64_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>(rng.normal());
  }
  for (int64_t i = 0; i < lbl.numel(); ++i) {
    lbl[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
  }
  r.features.emplace("image", std::move(img));
  r.features.emplace("label", std::move(lbl));
  return r;
}

class RecordIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dmis_rec_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  unsigned char zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8A9136AAU);
  // "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283U);
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t v : {0U, 1U, 0xDEADBEEFU, 0xFFFFFFFFU}) {
    EXPECT_EQ(unmask_crc(mask_crc(v)), v);
  }
}

TEST(RecordTest, SerializeParseRoundTrip) {
  const Record r = make_record(42, 1);
  const auto payload = serialize_record(r);
  const Record back = parse_record(payload);
  EXPECT_EQ(back.id, 42);
  ASSERT_EQ(back.features.size(), 2U);
  EXPECT_TRUE(back.features.at("image").allclose(r.features.at("image"), 0.0F));
  EXPECT_TRUE(back.features.at("label").allclose(r.features.at("label"), 0.0F));
}

TEST(RecordTest, ParseRejectsTruncatedPayload) {
  const Record r = make_record(1, 2);
  auto payload = serialize_record(r);
  payload.resize(payload.size() / 2);
  EXPECT_THROW(parse_record(payload), IoError);
}

TEST(RecordTest, ExampleRoundTrip) {
  Example ex;
  ex.id = 9;
  ex.image = NDArray(Shape{4, 2, 2, 2}, 1.5F);
  ex.label = NDArray(Shape{1, 2, 2, 2}, 1.0F);
  const Record r = Record::from_example(ex);
  const Example back = r.to_example();
  EXPECT_EQ(back.id, 9);
  EXPECT_TRUE(back.image.allclose(ex.image, 0.0F));
  EXPECT_TRUE(back.label.allclose(ex.label, 0.0F));
}

TEST_F(RecordIoTest, WriteReadRoundTrip) {
  const std::string path = (dir_ / "subjects.drec").string();
  {
    RecordWriter writer(path);
    for (int64_t i = 0; i < 5; ++i) {
      writer.write(make_record(i, static_cast<uint64_t>(i) + 10));
    }
    EXPECT_EQ(writer.records_written(), 5);
  }
  const auto records = read_all_records(path);
  ASSERT_EQ(records.size(), 5U);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].id, i);
  }
  // Payload equality for one of them.
  const Record expect = make_record(3, 13);
  EXPECT_TRUE(records[3].features.at("image").allclose(
      expect.features.at("image"), 0.0F));
}

TEST_F(RecordIoTest, EmptyFileYieldsNoRecords) {
  const std::string path = (dir_ / "empty.drec").string();
  { RecordWriter writer(path); }
  EXPECT_TRUE(read_all_records(path).empty());
}

TEST_F(RecordIoTest, CorruptPayloadDetectedByCrc) {
  const std::string path = (dir_ / "corrupt.drec").string();
  {
    RecordWriter writer(path);
    writer.write(make_record(0, 3));
  }
  // Flip one byte in the middle of the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char b;
    f.seekg(64);
    f.get(b);
    f.seekp(64);
    f.put(static_cast<char>(b ^ 0x5A));
  }
  RecordReader reader(path);
  Record r;
  EXPECT_THROW(reader.read(r), IoError);
}

TEST_F(RecordIoTest, TruncatedFileDetected) {
  const std::string path = (dir_ / "trunc.drec").string();
  {
    RecordWriter writer(path);
    writer.write(make_record(0, 4));
  }
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 8);
  RecordReader reader(path);
  Record r;
  EXPECT_THROW(reader.read(r), IoError);
}

TEST_F(RecordIoTest, MissingFeaturesRejectedOnToExample) {
  Record r;
  r.id = 1;
  EXPECT_THROW(r.to_example(), IoError);
}

}  // namespace
}  // namespace dmis::data
