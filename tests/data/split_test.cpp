#include "data/split.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace dmis::data {
namespace {

TEST(SplitTest, PaperFractionsFor484Subjects) {
  // The MSD Task-1 dataset has 484 subjects; 70/15/15 gives 338/72/74.
  const DatasetSplit s = split_dataset_paper(484, 1);
  EXPECT_EQ(s.train.size(), 338U);
  EXPECT_EQ(s.val.size(), 72U);
  EXPECT_EQ(s.test.size(), 74U);
}

TEST(SplitTest, PartitionIsCompleteAndDisjoint) {
  const DatasetSplit s = split_dataset(100, 0.7, 0.15, 7);
  std::set<int64_t> all;
  all.insert(s.train.begin(), s.train.end());
  all.insert(s.val.begin(), s.val.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100U);
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), 100U);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), 99);
}

TEST(SplitTest, DeterministicPerSeed) {
  const DatasetSplit a = split_dataset(50, 0.7, 0.15, 3);
  const DatasetSplit b = split_dataset(50, 0.7, 0.15, 3);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.val, b.val);
  EXPECT_EQ(a.test, b.test);
  const DatasetSplit c = split_dataset(50, 0.7, 0.15, 4);
  EXPECT_NE(a.train, c.train);
}

TEST(SplitTest, ShufflesIds) {
  const DatasetSplit s = split_dataset(200, 0.5, 0.25, 11);
  // Train must not simply be [0, 100).
  bool monotone = true;
  for (size_t i = 1; i < s.train.size(); ++i) {
    if (s.train[i] != s.train[i - 1] + 1) {
      monotone = false;
      break;
    }
  }
  EXPECT_FALSE(monotone);
}

TEST(SplitTest, RejectsBadInputs) {
  EXPECT_THROW(split_dataset(0, 0.7, 0.15, 1), InvalidArgument);
  EXPECT_THROW(split_dataset(10, 0.0, 0.15, 1), InvalidArgument);
  EXPECT_THROW(split_dataset(10, 0.9, 0.2, 1), InvalidArgument);
}

TEST(SplitTest, NoValOrTestAllowed) {
  const DatasetSplit s = split_dataset(10, 1.0, 0.0, 1);
  EXPECT_EQ(s.train.size(), 10U);
  EXPECT_TRUE(s.val.empty());
  EXPECT_TRUE(s.test.empty());
}

}  // namespace
}  // namespace dmis::data
