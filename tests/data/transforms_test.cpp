#include "data/transforms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "data/phantom.hpp"

namespace dmis::data {
namespace {

TEST(CenterCropTest, PaperDepthCrop155To152) {
  Volume v(1, 155, 8, 8);
  for (int64_t z = 0; z < 155; ++z) v.at(0, z, 0, 0) = static_cast<float>(z);
  const Volume c = center_crop(v, 152, 8, 8);
  EXPECT_EQ(c.depth(), 152);
  // (155 - 152) / 2 = 1 leading slice dropped.
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 0), 1.0F);
  EXPECT_FLOAT_EQ(c.at(0, 151, 0, 0), 152.0F);
}

TEST(CenterCropTest, AllAxes) {
  Volume v(2, 10, 12, 14);
  const Volume c = center_crop(v, 8, 8, 8);
  EXPECT_EQ(c.channels(), 2);
  EXPECT_EQ(c.depth(), 8);
  EXPECT_EQ(c.height(), 8);
  EXPECT_EQ(c.width(), 8);
}

TEST(CenterCropTest, RejectsUpscale) {
  Volume v(1, 4, 4, 4);
  EXPECT_THROW(center_crop(v, 5, 4, 4), InvalidArgument);
}

TEST(StandardizeTest, ZeroMeanUnitStdPerChannel) {
  Volume v(2, 4, 4, 4);
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    v.tensor()[i] = static_cast<float>(i % 17) + (i < 64 ? 100.0F : -5.0F);
  }
  standardize_per_channel(v);
  const int64_t per = v.voxels_per_channel();
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int64_t i = 0; i < per; ++i) {
      const float x = v.tensor()[c * per + i];
      sum += x;
      sq += static_cast<double>(x) * x;
    }
    EXPECT_NEAR(sum / per, 0.0, 1e-4);
    EXPECT_NEAR(sq / per, 1.0, 1e-3);
  }
}

TEST(StandardizeTest, ConstantChannelBecomesZero) {
  Volume v(1, 2, 2, 2);
  v.tensor().fill(7.0F);
  standardize_per_channel(v);
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    EXPECT_FLOAT_EQ(v.tensor()[i], 0.0F);
  }
}

TEST(JoinLabelsTest, BinaryWholeTumor) {
  Volume labels(1, 1, 2, 2);
  labels.at(0, 0, 0, 0) = 0.0F;
  labels.at(0, 0, 0, 1) = 1.0F;  // edema
  labels.at(0, 0, 1, 0) = 2.0F;  // non-enhancing
  labels.at(0, 0, 1, 1) = 3.0F;  // enhancing
  const Volume bin = join_labels_binary(labels);
  EXPECT_FLOAT_EQ(bin.at(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(bin.at(0, 0, 0, 1), 1.0F);
  EXPECT_FLOAT_EQ(bin.at(0, 0, 1, 0), 1.0F);
  EXPECT_FLOAT_EQ(bin.at(0, 0, 1, 1), 1.0F);
}

TEST(JoinLabelsTest, RejectsOutOfRangeClasses) {
  Volume labels(1, 1, 1, 1);
  labels.at(0, 0, 0, 0) = 4.0F;
  EXPECT_THROW(join_labels_binary(labels), InvalidArgument);
}

TEST(JoinLabelsTest, RejectsMultiChannel) {
  Volume labels(2, 1, 1, 1);
  EXPECT_THROW(join_labels_binary(labels), InvalidArgument);
}

TEST(CropToDivisibleTest, PaperRule) {
  Volume v(4, 155, 240, 240);
  const CropGeometry g = crop_to_divisible(v, 8);
  EXPECT_EQ(g.depth, 152);
  EXPECT_EQ(g.height, 240);
  EXPECT_EQ(g.width, 240);
}

TEST(CropToDivisibleTest, TooSmallThrows) {
  Volume v(1, 5, 8, 8);
  EXPECT_THROW(crop_to_divisible(v, 8), InvalidArgument);
}

TEST(PreprocessSubjectTest, EndToEndOnPhantom) {
  PhantomGenerator gen;  // depth 19 -> cropped to 16
  const PhantomSubject s = gen.generate(0);
  const Example ex = preprocess_subject(s.image, s.labels, s.id, 8);
  EXPECT_EQ(ex.id, 0);
  EXPECT_EQ(ex.image.shape(), (Shape{4, 16, 24, 24}));
  EXPECT_EQ(ex.label.shape(), (Shape{1, 16, 24, 24}));
  // Labels binary.
  for (int64_t i = 0; i < ex.label.numel(); ++i) {
    EXPECT_TRUE(ex.label[i] == 0.0F || ex.label[i] == 1.0F);
  }
  // Image standardized: overall per-channel mean ~ 0.
  const int64_t per = 16 * 24 * 24;
  double mean0 = 0.0;
  for (int64_t i = 0; i < per; ++i) mean0 += ex.image[i];
  EXPECT_NEAR(mean0 / per, 0.0, 1e-3);
}

TEST(PreprocessSubjectTest, GeometryMismatchThrows) {
  Volume img(4, 8, 8, 8);
  Volume lbl(1, 8, 8, 9);
  EXPECT_THROW(preprocess_subject(img, lbl, 0), InvalidArgument);
}

TEST(CheckDegenerateTest, CleanPhantomIsOk) {
  PhantomOptions popts;
  popts.depth = 8;
  popts.height = 8;
  popts.width = 8;
  const PhantomSubject s = PhantomGenerator(popts).generate(0);
  const DegeneracyReport report = check_degenerate(s.image);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.nonfinite_voxels, 0);
  EXPECT_EQ(report.zero_variance_channels, 0);
}

TEST(CheckDegenerateTest, CountsNonFiniteVoxels) {
  PhantomOptions popts;
  popts.depth = 8;
  popts.height = 8;
  popts.width = 8;
  Volume v = PhantomGenerator(popts).generate(1).image;
  v.at(0, 1, 1, 1) = std::numeric_limits<float>::quiet_NaN();
  v.at(2, 0, 0, 0) = std::numeric_limits<float>::infinity();
  v.at(3, 7, 7, 7) = -std::numeric_limits<float>::infinity();
  const DegeneracyReport report = check_degenerate(v);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.nonfinite_voxels, 3);
}

TEST(CheckDegenerateTest, FlagsZeroVarianceChannels) {
  PhantomOptions popts;
  popts.depth = 8;
  popts.height = 8;
  popts.width = 8;
  Volume v = PhantomGenerator(popts).generate(2).image;
  float* ch = v.tensor().data() + 1 * v.voxels_per_channel();
  std::fill(ch, ch + v.voxels_per_channel(), 3.25F);
  const DegeneracyReport report = check_degenerate(v);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.zero_variance_channels, 1);
  EXPECT_EQ(report.nonfinite_voxels, 0);
}

}  // namespace
}  // namespace dmis::data
