#include "data/volume.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/check.hpp"

namespace dmis::data {
namespace {

class VolumeIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dmis_vol_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST(VolumeTest, GeometryAndIndexing) {
  Volume v(4, 5, 6, 7);
  EXPECT_EQ(v.channels(), 4);
  EXPECT_EQ(v.depth(), 5);
  EXPECT_EQ(v.height(), 6);
  EXPECT_EQ(v.width(), 7);
  EXPECT_EQ(v.voxels_per_channel(), 5 * 6 * 7);
  EXPECT_EQ(v.tensor().shape(), (Shape{4, 5, 6, 7}));
  v.at(3, 4, 5, 6) = 9.0F;
  EXPECT_FLOAT_EQ(v.tensor()[v.tensor().numel() - 1], 9.0F);
}

TEST(VolumeTest, RejectsBadGeometry) {
  EXPECT_THROW(Volume(0, 1, 1, 1), InvalidArgument);
  EXPECT_THROW(Volume(1, 0, 1, 1), InvalidArgument);
}

TEST(VolumeTest, ModalityNames) {
  EXPECT_STREQ(modality_name(Modality::kFlair), "FLAIR");
  EXPECT_STREQ(modality_name(Modality::kT1w), "T1w");
  EXPECT_STREQ(modality_name(Modality::kT1gd), "T1gd");
  EXPECT_STREQ(modality_name(Modality::kT2w), "T2w");
}

TEST_F(VolumeIoTest, SaveLoadRoundTrip) {
  Volume v(2, 3, 4, 5, {1.0F, 2.0F, 3.0F});
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    v.tensor()[i] = static_cast<float>(i) * 0.5F;
  }
  const std::string path = (dir_ / "a.dvol").string();
  v.save(path);
  const Volume r = Volume::load(path);
  EXPECT_EQ(r.channels(), 2);
  EXPECT_EQ(r.depth(), 3);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.width(), 5);
  EXPECT_EQ(r.spacing()[1], 2.0F);
  EXPECT_TRUE(r.tensor().allclose(v.tensor(), 0.0F));
}

TEST_F(VolumeIoTest, RawI16RoundTripWithinQuantizationError) {
  Volume v(2, 4, 4, 4);
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    v.tensor()[i] = static_cast<float>(i % 37) * 0.25F - 3.0F;
  }
  const std::string path = (dir_ / "raw.dvoi").string();
  v.save_raw_i16(path);
  const Volume r = Volume::load_raw_i16(path);
  EXPECT_EQ(r.depth(), 4);
  const float max_abs = 6.0F;  // |values| < ~6
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    EXPECT_NEAR(r.tensor()[i], v.tensor()[i], max_abs / 32767.0F * 1.5F);
  }
}

TEST_F(VolumeIoTest, RawI16IsSmallerThanFloatForm) {
  Volume v(4, 8, 8, 8);
  v.tensor().fill(1.0F);
  const std::string f32 = (dir_ / "a.dvol").string();
  const std::string i16 = (dir_ / "a.dvoi").string();
  v.save(f32);
  v.save_raw_i16(i16);
  EXPECT_LT(std::filesystem::file_size(i16),
            std::filesystem::file_size(f32));
}

TEST_F(VolumeIoTest, RawI16AllZeroVolume) {
  Volume v(1, 2, 2, 2);
  const std::string path = (dir_ / "zero.dvoi").string();
  v.save_raw_i16(path);
  const Volume r = Volume::load_raw_i16(path);
  for (int64_t i = 0; i < r.tensor().numel(); ++i) {
    EXPECT_EQ(r.tensor()[i], 0.0F);
  }
}

TEST_F(VolumeIoTest, RawLoaderRejectsFloatFormat) {
  Volume v(1, 2, 2, 2);
  const std::string path = (dir_ / "b.dvol").string();
  v.save(path);
  EXPECT_THROW(Volume::load_raw_i16(path), IoError);
  v.save_raw_i16(path);
  EXPECT_THROW(Volume::load(path), IoError);
}

TEST_F(VolumeIoTest, LoadRejectsGarbage) {
  const std::string path = (dir_ / "bad.dvol").string();
  {
    std::ofstream os(path);
    os << "garbage";
  }
  EXPECT_THROW(Volume::load(path), IoError);
  EXPECT_THROW(Volume::load((dir_ / "missing.dvol").string()), IoError);
}

TEST_F(VolumeIoTest, PgmSliceWritten) {
  Volume v(1, 2, 4, 4);
  for (int64_t h = 0; h < 4; ++h) {
    for (int64_t w = 0; w < 4; ++w) {
      v.at(0, 1, h, w) = static_cast<float>(h * 4 + w);
    }
  }
  const std::string path = (dir_ / "slice.pgm").string();
  v.write_pgm_slice(path, 0, 1);
  std::ifstream is(path, std::ios::binary);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "P5");
  EXPECT_THROW(v.write_pgm_slice(path, 2, 0), InvalidArgument);
  EXPECT_THROW(v.write_pgm_slice(path, 0, 5), InvalidArgument);
}

}  // namespace
}  // namespace dmis::data
