// Chaos test for data-parallel failure semantics (the PR's acceptance
// gate): a 4-replica mirrored run loses one rank mid-step — crashed or
// hung — and must either abort cleanly with a typed comm error within
// the deadline (elastic off) or shrink to 3 ranks, restore from the
// step-consistent checkpoint, and finish with the same result as a
// fault-free 3-rank run (elastic on). Either way: no deadlock.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "tensor/rng.hpp"
#include "train/mirrored.hpp"

namespace dmis::train {
namespace {

std::vector<data::Example> make_examples(int64_t n, uint64_t seed) {
  std::vector<data::Example> out;
  Rng rng(seed);
  const int64_t S = 4;
  for (int64_t id = 0; id < n; ++id) {
    data::Example ex;
    ex.id = id;
    ex.image = NDArray(Shape{1, S, S, S});
    ex.label = NDArray(Shape{1, S, S, S});
    for (int64_t i = 0; i < ex.image.numel(); ++i) {
      ex.image[i] = static_cast<float>(rng.normal());
      ex.label[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
    }
    out.push_back(std::move(ex));
  }
  return out;
}

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 23;
  opts.batch_norm = false;
  return opts;
}

std::vector<float> flat_params(nn::UNet3d& model) {
  std::vector<float> out;
  for (const nn::Param& p : model.params()) {
    out.insert(out.end(), p.value->data(),
               p.value->data() + p.value->numel());
  }
  return out;
}

MirroredOptions four_rank_options() {
  MirroredOptions mopt;
  mopt.num_replicas = 4;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  return mopt;
}

data::BatchStream make_stream() {
  return data::BatchStream(data::from_examples(make_examples(8, 17)), 4);
}

class ChaosDataParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    dir_ = (std::filesystem::temp_directory_path() /
            ("dmis_chaos_dp_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }

  /// Fault-free 3-rank reference run on the same data and seeds.
  std::vector<float> reference_3rank(double* final_loss) {
    MirroredOptions mopt = four_rank_options();
    mopt.num_replicas = 3;
    MirroredStrategy reference(tiny_model(), mopt);
    data::BatchStream train = make_stream();
    const TrainReport report = reference.fit(train, nullptr);
    if (final_loss != nullptr) {
      *final_loss = report.history.back().train_loss;
    }
    return flat_params(reference.model());
  }

  std::string dir_;
};

// Rank 3 crashes on its first collective; elastic off. The whole fit()
// must surface a typed error promptly — no rank left blocked in the
// ring, no deadlock.
TEST_F(ChaosDataParallelTest, CrashWithElasticOffAbortsCleanly) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r3", 1);
  MirroredStrategy mirrored(tiny_model(), four_rank_options());
  data::BatchStream train = make_stream();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(mirrored.fit(train, nullptr), Error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 60) << "fail-fast abort took too long";
  EXPECT_EQ(mirrored.recoveries(), 0);
}

// Rank 3 crashes on its first collective; elastic on. Training shrinks
// to 3 ranks, restores the step-0 checkpoint, rescales the lr, and must
// land exactly where a fault-free 3-rank run lands.
TEST_F(ChaosDataParallelTest, CrashWithElasticOnMatchesFaultFree3RankRun) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r3", 1);
  MirroredOptions mopt = four_rank_options();
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 3);
  ASSERT_EQ(report.history.size(), 2U);

  common::FaultInjector::instance().reset();
  double ref_loss = 0.0;
  const std::vector<float> ref = reference_3rank(&ref_loss);
  const std::vector<float> got = flat_params(mirrored.model());
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-6F) << "param element " << i;
  }
  EXPECT_NEAR(report.history.back().train_loss, ref_loss, 1e-6);
}

// Rank 3 hangs (doesn't crash) on its first collective; elastic on.
// Only the per-collective deadline can detect this: survivors time out,
// agree on the dead set, shrink, and continue. The hung rank eventually
// wakes, finds the group poisoned, and is fenced out of the agreement.
TEST_F(ChaosDataParallelTest, HangWithElasticOnRecoversViaDeadline) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r3", 1);
  faults.set_action_hang("comm.all_reduce.r3", /*auto_release_ms=*/3000);

  MirroredOptions mopt = four_rank_options();
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  mopt.comm_timeout_ms = 800;
  mopt.agree_grace_ms = 400;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 3);
  ASSERT_EQ(report.history.size(), 2U);
  for (const EpochStats& s : report.history) {
    EXPECT_TRUE(std::isfinite(s.train_loss));
  }

  // The hang fired before the ring moved any data, so the shrunken run
  // is arithmetically the fault-free 3-rank run here too.
  faults.reset();
  double ref_loss = 0.0;
  const std::vector<float> ref = reference_3rank(&ref_loss);
  const std::vector<float> got = flat_params(mirrored.model());
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-6F) << "param element " << i;
  }
}

// Rank 3 hangs; elastic off. fit() must abort with a typed CommError
// once the deadline fires — bounded time, no deadlock.
TEST_F(ChaosDataParallelTest, HangWithElasticOffAbortsWithCommError) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r3", 1);
  faults.set_action_hang("comm.all_reduce.r3", /*auto_release_ms=*/2000);

  MirroredOptions mopt = four_rank_options();
  mopt.comm_timeout_ms = 500;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train = make_stream();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(mirrored.fit(train, nullptr), comm::CommError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 60) << "deadline abort took too long";
}

// The elastic machinery must be algorithm-agnostic: the same rank-loss
// chaos, run under the tree and hierarchical all-reduce schedules (via
// MirroredOptions::comm_algo, with ranks_per_node=2 so hier really
// splits into node groups). After the shrink to 3 ranks the node groups
// go ragged ({0,1} + {2}) — the hierarchical schedule's hard case —
// and the result must still match the fault-free 3-rank run under the
// same algorithm.
class ChaosDataParallelAlgoTest
    : public ::testing::TestWithParam<comm::AllReduceAlgo> {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    dir_ = (std::filesystem::temp_directory_path() /
            ("dmis_chaos_dp_algo_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }

  MirroredOptions algo_options() {
    MirroredOptions mopt = four_rank_options();
    mopt.comm_algo = GetParam();
    mopt.comm_ranks_per_node = 2;
    return mopt;
  }

  /// Fault-free 3-rank reference under the SAME algorithm and topology.
  std::vector<float> reference_3rank(double* final_loss) {
    MirroredOptions mopt = algo_options();
    mopt.num_replicas = 3;
    MirroredStrategy reference(tiny_model(), mopt);
    data::BatchStream train = make_stream();
    const TrainReport report = reference.fit(train, nullptr);
    if (final_loss != nullptr) {
      *final_loss = report.history.back().train_loss;
    }
    return flat_params(reference.model());
  }

  std::string dir_;
};

// Rank 3 crashes on its first collective; elastic on. The shrunken run
// must land exactly on the fault-free 3-rank run for every schedule.
TEST_P(ChaosDataParallelAlgoTest, CrashWithElasticOnMatchesFaultFreeRun) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r3", 1);
  MirroredOptions mopt = algo_options();
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 3);
  ASSERT_EQ(report.history.size(), 2U);

  common::FaultInjector::instance().reset();
  double ref_loss = 0.0;
  const std::vector<float> ref = reference_3rank(&ref_loss);
  const std::vector<float> got = flat_params(mirrored.model());
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-6F) << "param element " << i;
  }
  EXPECT_NEAR(report.history.back().train_loss, ref_loss, 1e-6);
}

// Rank 3 hangs; elastic off. The per-collective deadline must abort the
// fit with a typed CommError in bounded time under every schedule.
TEST_P(ChaosDataParallelAlgoTest, HangWithElasticOffAbortsWithCommError) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r3", 1);
  faults.set_action_hang("comm.all_reduce.r3", /*auto_release_ms=*/2000);

  MirroredOptions mopt = algo_options();
  mopt.comm_timeout_ms = 500;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train = make_stream();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(mirrored.fit(train, nullptr), comm::CommError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 60) << "deadline abort took too long";
}

INSTANTIATE_TEST_SUITE_P(
    Algos, ChaosDataParallelAlgoTest,
    ::testing::Values(comm::AllReduceAlgo::kTree, comm::AllReduceAlgo::kHier),
    [](const ::testing::TestParamInfo<comm::AllReduceAlgo>& info) {
      return std::string(comm::all_reduce_algo_name(info.param));
    });

}  // namespace
}  // namespace dmis::train
