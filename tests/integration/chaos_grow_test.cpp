// Chaos tests for elastic scale-UP (this PR's acceptance gate): a
// 4-replica mirrored run loses a rank mid-epoch, continues shrunk to 3,
// re-admits the returning rank at the next epoch boundary through the
// lease-based membership protocol, and finishes at world 4 with weights
// matching a fault-free 4-rank run to 1e-6 — under every all-reduce
// schedule and wire codec. Also covered: the kill-rejoin-kill double
// fault, the shape-mismatched joiner (typed rejection, no deadlock,
// no broadcast), top-k error-feedback residual conservation across the
// grow, and the tagged flight-recorder dumps on both transitions.
//
// Equivalence math: gradients are combined as a sample-count-weighted
// average, so the averaged gradient is world-size-invariant for the
// same global batch. With scale_lr=false (the lr would otherwise
// differ 3x vs 4x during the shrunk segment) and a lossless wire
// (codec none, or top-k at ratio 1.0), the shrunken segment is
// arithmetically identical to the 4-rank run and the gate is 1e-6;
// fp16's wire quantization rounds different partial sums at world 3
// than at world 4, so those legs carry ~1e-6 of codec noise and get a
// correspondingly looser 1e-5 gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/membership.hpp"
#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "tensor/rng.hpp"
#include "train/mirrored.hpp"

namespace dmis::train {
namespace {

std::vector<data::Example> make_examples(int64_t n, uint64_t seed) {
  std::vector<data::Example> out;
  Rng rng(seed);
  const int64_t S = 4;
  for (int64_t id = 0; id < n; ++id) {
    data::Example ex;
    ex.id = id;
    ex.image = NDArray(Shape{1, S, S, S});
    ex.label = NDArray(Shape{1, S, S, S});
    for (int64_t i = 0; i < ex.image.numel(); ++i) {
      ex.image[i] = static_cast<float>(rng.normal());
      ex.label[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
    }
    out.push_back(std::move(ex));
  }
  return out;
}

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 23;
  opts.batch_norm = false;
  return opts;
}

std::vector<float> flat_params(nn::UNet3d& model) {
  std::vector<float> out;
  for (const nn::Param& p : model.params()) {
    out.insert(out.end(), p.value->data(),
               p.value->data() + p.value->numel());
  }
  return out;
}

data::BatchStream make_stream() {
  return data::BatchStream(data::from_examples(make_examples(8, 17)), 4);
}

/// 4 replicas, 2 epochs, grow enabled. scale_lr=false so the shrunk
/// segment trains at the same rate as the reference (see file comment);
/// a generous lease keeps slow sanitizer builds from vetoing admission.
MirroredOptions grow_options(const std::string& dir) {
  MirroredOptions mopt;
  mopt.num_replicas = 4;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  mopt.scale_lr = false;
  mopt.elastic = true;
  mopt.elastic_dir = dir;
  mopt.elastic_grow = true;
  mopt.lease_ms = 60'000;
  return mopt;
}

/// Kill rank 3's nth allreduce with its rejoin pre-scheduled — the
/// node dies and its replacement is already knocking.
void arm_kill_with_rejoin(MirroredStrategy& mirrored, int64_t max_fires = 1) {
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("comm.all_reduce.r3", 1, max_fires);
  faults.set_action_restart("comm.all_reduce.r3",
                            [&mirrored] { mirrored.request_rejoin(); });
}

class ChaosGrowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    dir_ = (std::filesystem::temp_directory_path() /
            ("dmis_chaos_grow_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    obs::FlightRecorder::instance().configure("");
    std::filesystem::remove_all(dir_);
  }

  /// Fault-free 4-rank reference on the same data, seeds, and options
  /// (its own checkpoint dir so it never reads the chaos run's state).
  std::vector<float> reference_4rank(MirroredOptions mopt,
                                     double* final_loss) {
    common::FaultInjector::instance().reset();
    mopt.elastic_dir = dir_ + "_ref";
    MirroredStrategy reference(tiny_model(), mopt);
    data::BatchStream train = make_stream();
    const TrainReport report = reference.fit(train, nullptr);
    if (final_loss != nullptr) {
      *final_loss = report.history.back().train_loss;
    }
    std::filesystem::remove_all(dir_ + "_ref");
    return flat_params(reference.model());
  }

  std::string dir_;
};

// The headline gate: rank 3 dies on its first collective (rejoin
// pre-filed), the run continues shrunk to 3, re-admits at the epoch
// boundary, and finishes at world 4 matching the fault-free 4-rank run.
TEST_F(ChaosGrowTest, KillRejoinFinishesAtFullWorldMatchingFaultFreeRun) {
  MirroredOptions mopt = grow_options(dir_);
  MirroredStrategy mirrored(tiny_model(), mopt);
  arm_kill_with_rejoin(mirrored);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.grows(), 1);
  EXPECT_EQ(mirrored.world_size(), 4);
  ASSERT_EQ(report.history.size(), 2U);
  // The world-size gauge (what /healthz and the telemetry exporter
  // serve) must track the grow, not stay at the shrunken value.
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::instance()
                       .gauge("train.elastic.world_size")
                       .value(),
                   4.0);

  double ref_loss = 0.0;
  const std::vector<float> ref = reference_4rank(mopt, &ref_loss);
  const std::vector<float> got = flat_params(mirrored.model());
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-6F) << "param element " << i;
  }
  EXPECT_NEAR(report.history.back().train_loss, ref_loss, 1e-6);
}

// All replicas must agree after the grow: the broadcast reaches the
// joiner AND every survivor, so replica 3 (the re-admitted rank) ends
// bit-identical to replica 0.
TEST_F(ChaosGrowTest, JoinerReplicaIsBitIdenticalToSurvivors) {
  MirroredOptions mopt = grow_options(dir_);
  MirroredStrategy mirrored(tiny_model(), mopt);
  arm_kill_with_rejoin(mirrored);
  data::BatchStream train = make_stream();
  (void)mirrored.fit(train, nullptr);
  ASSERT_EQ(mirrored.world_size(), 4);
  const std::vector<float> rank0 = flat_params(mirrored.model());
  const std::vector<float> rank3 = flat_params(mirrored.replica(3));
  ASSERT_EQ(rank0.size(), rank3.size());
  for (size_t i = 0; i < rank0.size(); ++i) {
    ASSERT_EQ(rank0[i], rank3[i]) << "param element " << i;
  }
}

// Double fault: kill rank 3 in epoch 0, re-admit it at the boundary,
// kill it AGAIN on its first post-rejoin collective in epoch 1, and
// re-admit once more. Two shrinks, two grows, and the final weights
// still match the fault-free run (the fire budget of 2 on a cumulative
// call counter is what schedules the second kill).
TEST_F(ChaosGrowTest, KillRejoinKillDoubleFaultStillConverges) {
  MirroredOptions mopt = grow_options(dir_);
  mopt.train.epochs = 3;  // epoch 2 needs a boundary to re-admit after
  MirroredStrategy mirrored(tiny_model(), mopt);
  arm_kill_with_rejoin(mirrored, /*max_fires=*/2);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 2);
  EXPECT_EQ(mirrored.grows(), 2);
  EXPECT_EQ(mirrored.world_size(), 4);
  ASSERT_EQ(report.history.size(), 3U);

  double ref_loss = 0.0;
  const std::vector<float> ref = reference_4rank(mopt, &ref_loss);
  const std::vector<float> got = flat_params(mirrored.model());
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-6F) << "param element " << i;
  }
  EXPECT_NEAR(report.history.back().train_loss, ref_loss, 1e-6);
}

// A joiner whose checkpoint signature disagrees with the world (stale
// binary, wrong model config) must get a typed MembershipError — never
// a broadcast, never a deadlock — while training finishes untouched.
TEST_F(ChaosGrowTest, ShapeMismatchedJoinerRejectedTypedWithoutDeadlock) {
  MirroredOptions mopt = grow_options(dir_);
  MirroredStrategy mirrored(tiny_model(), mopt);

  comm::WorldSignature bad = mirrored.membership().signature();
  ASSERT_FALSE(bad.empty());
  bad.front().dims.front() += 1;  // one dimension off is enough

  bool rejected_typed = false;
  std::thread joiner([&] {
    try {
      const comm::JoinTicket ticket =
          mirrored.membership().request_join(std::move(bad));
      (void)mirrored.membership().await_admission(ticket,
                                                  /*timeout_ms=*/60'000);
    } catch (const comm::MembershipError& e) {
      rejected_typed = e.kind() == comm::MembershipErrorKind::kShapeMismatch;
    }
  });

  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);
  joiner.join();

  EXPECT_TRUE(rejected_typed);
  EXPECT_EQ(mirrored.grows(), 0);    // nothing was admitted
  EXPECT_EQ(mirrored.world_size(), 4);
  ASSERT_EQ(report.history.size(), 2U);
  for (const EpochStats& s : report.history) {
    EXPECT_TRUE(std::isfinite(s.train_loss));
  }
}

// Top-k error feedback at a lossy ratio: the survivors' residual mass
// must ride across the rebuild intact — exported == imported and
// nonzero (at ratio 0.25, ~75% of gradient mass lives in residuals).
TEST_F(ChaosGrowTest, TopkResidualMassConservedAcrossGrow) {
  MirroredOptions mopt = grow_options(dir_);
  mopt.compress.mode = comm::CompressMode::kTopK;
  mopt.compress.topk_ratio = 0.25;
  MirroredStrategy mirrored(tiny_model(), mopt);
  arm_kill_with_rejoin(mirrored);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.grows(), 1);
  EXPECT_EQ(mirrored.world_size(), 4);
  ASSERT_EQ(report.history.size(), 2U);
  auto& reg = obs::MetricsRegistry::instance();
  const double exported =
      reg.gauge("train.elastic.residual_mass_exported").value();
  const double imported =
      reg.gauge("train.elastic.residual_mass_imported").value();
  EXPECT_GT(exported, 0.0);
  EXPECT_DOUBLE_EQ(imported, exported);
}

// Both transitions leave a tagged flight-recorder dump: one for the
// shrink (4->3), one for the grow (3->4).
TEST_F(ChaosGrowTest, ShrinkAndGrowEachLeaveTaggedFlightDump) {
  auto& recorder = obs::FlightRecorder::instance();
  recorder.configure(dir_ + "/flight");
  const int64_t dumps_before = recorder.dumps();

  MirroredOptions mopt = grow_options(dir_);
  MirroredStrategy mirrored(tiny_model(), mopt);
  arm_kill_with_rejoin(mirrored);
  data::BatchStream train = make_stream();
  (void)mirrored.fit(train, nullptr);
  EXPECT_EQ(mirrored.grows(), 1);
  EXPECT_GE(recorder.dumps() - dumps_before, 2);

  // Scan the dump directory for both transition tags (old->new world).
  bool saw_shrink = false;
  bool saw_grow = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/flight")) {
    std::ifstream is(entry.path());
    const std::string blob((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
    saw_shrink = saw_shrink ||
                 blob.find("train.elastic.shrink(4->3)") != std::string::npos;
    saw_grow = saw_grow ||
               blob.find("train.elastic.grow(3->4)") != std::string::npos;
  }
  EXPECT_TRUE(saw_shrink);
  EXPECT_TRUE(saw_grow);
}

// The grow machinery must be schedule- and codec-agnostic: the same
// kill+rejoin chaos under ring/tree/hierarchical all-reduce crossed
// with none/fp16/topk wire codecs (top-k at ratio 1.0 — lossless — so
// the 1e-6 equivalence gate applies; hier runs with ranks_per_node=2,
// whose node groups go ragged at world 3, the hard case).
struct GrowMatrixParam {
  comm::AllReduceAlgo algo;
  comm::CompressMode codec;
};

class ChaosGrowMatrixTest
    : public ::testing::TestWithParam<GrowMatrixParam> {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    dir_ = (std::filesystem::temp_directory_path() /
            ("dmis_chaos_growm_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }

  MirroredOptions matrix_options() {
    MirroredOptions mopt = grow_options(dir_);
    mopt.comm_algo = GetParam().algo;
    mopt.comm_ranks_per_node = 2;
    mopt.compress.mode = GetParam().codec;
    mopt.compress.topk_ratio = 1.0;  // lossless: equivalence gate holds
    return mopt;
  }

  std::string dir_;
};

TEST_P(ChaosGrowMatrixTest, KillRejoinMatchesFaultFreeRun) {
  // Lossless wires reproduce the reference exactly (1e-6); the fp16
  // wire rounds world-3 partial sums differently than world-4 ones, so
  // its legs carry inherent codec noise (see file comment).
  const float tol =
      GetParam().codec == comm::CompressMode::kFp16 ? 1e-5F : 1e-6F;
  MirroredOptions mopt = matrix_options();
  MirroredStrategy mirrored(tiny_model(), mopt);
  arm_kill_with_rejoin(mirrored);
  data::BatchStream train = make_stream();
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.grows(), 1);
  EXPECT_EQ(mirrored.world_size(), 4);
  ASSERT_EQ(report.history.size(), 2U);

  common::FaultInjector::instance().reset();
  MirroredOptions ref_opts = mopt;
  ref_opts.elastic_dir = dir_ + "_ref";
  MirroredStrategy reference(tiny_model(), ref_opts);
  data::BatchStream ref_train = make_stream();
  const TrainReport ref_report = reference.fit(ref_train, nullptr);
  std::filesystem::remove_all(dir_ + "_ref");

  const std::vector<float> ref = flat_params(reference.model());
  const std::vector<float> got = flat_params(mirrored.model());
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], tol) << "param element " << i;
  }
  EXPECT_NEAR(report.history.back().train_loss,
              ref_report.history.back().train_loss, tol);
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndCodecs, ChaosGrowMatrixTest,
    ::testing::Values(
        GrowMatrixParam{comm::AllReduceAlgo::kRing, comm::CompressMode::kNone},
        GrowMatrixParam{comm::AllReduceAlgo::kRing, comm::CompressMode::kFp16},
        GrowMatrixParam{comm::AllReduceAlgo::kRing, comm::CompressMode::kTopK},
        GrowMatrixParam{comm::AllReduceAlgo::kTree, comm::CompressMode::kNone},
        GrowMatrixParam{comm::AllReduceAlgo::kTree, comm::CompressMode::kFp16},
        GrowMatrixParam{comm::AllReduceAlgo::kTree, comm::CompressMode::kTopK},
        GrowMatrixParam{comm::AllReduceAlgo::kHier, comm::CompressMode::kNone},
        GrowMatrixParam{comm::AllReduceAlgo::kHier, comm::CompressMode::kFp16},
        GrowMatrixParam{comm::AllReduceAlgo::kHier,
                        comm::CompressMode::kTopK}),
    [](const ::testing::TestParamInfo<GrowMatrixParam>& info) {
      return std::string(comm::all_reduce_algo_name(info.param.algo)) + "_" +
             comm::compress_mode_name(info.param.codec);
    });

}  // namespace
}  // namespace dmis::train
