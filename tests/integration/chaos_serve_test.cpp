// chaos_serve: the serving robustness acceptance gate.
//
// A 4-worker SegmentationServer is driven through a request mix while
// the fault injector crashes worker pickups, hangs one worker (with
// auto-release, modeling a transient stall), and slows inference. The
// gate asserts the robustness contract end to end:
//   * every submitted request resolves — to a result or a *typed*
//     ServeError — with no deadlock, no abort, no stuck future;
//   * results produced under chaos are bitwise identical to the
//     fault-free run (faults fail requests, never corrupt survivors);
//   * the server keeps serving after the faults stop (health recovers).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "core/serve.hpp"
#include "data/volume.hpp"
#include "serve/server.hpp"
#include "tensor/rng.hpp"

namespace dmis::serve {
namespace {

constexpr int kRequests = 16;

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 23;
  return opts;
}

data::Volume noise_volume(uint64_t seed) {
  data::Volume v(1, 8, 8, 8);
  Rng rng(seed);
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    v.tensor()[i] = static_cast<float>(rng.normal());
  }
  return v;
}

ServeOptions chaos_options() {
  ServeOptions options;
  options.num_workers = 4;
  options.queue_capacity = 32;
  // Generous: queue wait on a 1-core TSan host is real latency, and the
  // gate is about *typed* resolution, not tight tail bounds.
  options.default_deadline_ms = 30000;
  options.breaker_recovery_successes = 1;
  return options;
}

class ChaosServeTest : public ::testing::Test {
 protected:
  void SetUp() override { common::FaultInjector::instance().reset(); }
  void TearDown() override { common::FaultInjector::instance().reset(); }
};

TEST_F(ChaosServeTest, ChaosRunShedsOrFailsTypedAndMatchesFaultFreeBitwise) {
  auto& injector = common::FaultInjector::instance();
  std::vector<data::Volume> volumes;
  volumes.reserve(kRequests);
  for (uint64_t s = 0; s < kRequests; ++s) {
    volumes.push_back(noise_volume(s));
  }

  // ---- Fault-free reference run. -----------------------------------
  std::vector<core::SegmentationResult> reference;
  reference.reserve(kRequests);
  {
    SegmentationServer server(tiny_model(), "", chaos_options());
    std::vector<std::future<core::SegmentationResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(server.submit(volumes[static_cast<size_t>(i)]));
    }
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_EQ(futures[static_cast<size_t>(i)].wait_for(
                    std::chrono::seconds(120)),
                std::future_status::ready)
          << "fault-free request " << i << " never resolved";
      reference.push_back(futures[static_cast<size_t>(i)].get());
    }
    const ServerStats stats = server.stats();
    ASSERT_EQ(stats.completed, kRequests);
    ASSERT_EQ(stats.shed, 0) << "nominal load must not shed";
    ASSERT_EQ(stats.timeouts, 0);
    ASSERT_EQ(stats.errors, 0);
  }

  // ---- Chaos run against a fresh server with the same weights. -----
  SegmentationServer server(tiny_model(), "", chaos_options());

  // Every 5th worker pickup crashes (the worker thread must survive).
  injector.arm_every_n("serve.worker", 5);
  // Worker 1 stalls on its first pickup and recovers after 300ms —
  // a transient hang, not a death; its request should still complete.
  injector.arm_nth_call("serve.worker.r1", 1);
  injector.set_action_hang("serve.worker.r1", /*auto_release_ms=*/300);
  // Every 7th forward pass runs slow.
  injector.arm_every_n("serve.infer", 7);
  injector.set_action_delay("serve.infer", 50);

  std::vector<std::future<core::SegmentationResult>> futures(kRequests);
  std::vector<bool> admitted(kRequests, false);
  int shed_at_submit = 0;
  for (int i = 0; i < kRequests; ++i) {
    try {
      futures[static_cast<size_t>(i)] =
          server.submit(volumes[static_cast<size_t>(i)]);
      admitted[static_cast<size_t>(i)] = true;
    } catch (const ServeError&) {
      ++shed_at_submit;  // typed admission rejection is a valid outcome
    }
  }

  int successes = 0;
  int typed_failures = 0;
  for (int i = 0; i < kRequests; ++i) {
    if (!admitted[static_cast<size_t>(i)]) continue;
    auto& fut = futures[static_cast<size_t>(i)];
    // The liveness half of the gate: no future may hang past its
    // deadline (30s) plus scheduling slack, faults or not.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "chaos request " << i << " never resolved";
    try {
      const core::SegmentationResult got = fut.get();
      // The integrity half: survivors are bitwise identical to the
      // fault-free run — chaos may fail requests, never corrupt them.
      const core::SegmentationResult& want =
          reference[static_cast<size_t>(i)];
      ASSERT_EQ(got.mask.tensor().numel(), want.mask.tensor().numel());
      for (int64_t v = 0; v < got.mask.tensor().numel(); ++v) {
        ASSERT_EQ(got.mask.tensor()[v], want.mask.tensor()[v])
            << "request " << i << " voxel " << v;
      }
      for (int64_t v = 0; v < got.probabilities.tensor().numel(); ++v) {
        ASSERT_EQ(got.probabilities.tensor()[v],
                  want.probabilities.tensor()[v]);
      }
      EXPECT_EQ(got.tumor_voxels, want.tumor_voxels);
      ++successes;
    } catch (const ServeError& e) {
      (void)serve_error_kind_name(e.kind());  // every kind must name
      ++typed_failures;
    } catch (const std::exception& e) {
      FAIL() << "request " << i
             << " failed with a non-ServeError: " << e.what();
    }
  }

  // Accounting closes: nothing vanished.
  EXPECT_EQ(successes + typed_failures + shed_at_submit, kRequests);
  EXPECT_GE(successes, 1) << "chaos run produced no survivors to compare";
  EXPECT_GE(typed_failures, 1) << "faults armed but nothing failed — "
                                  "the chaos gate exercised nothing";
  {
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.accepted, successes + typed_failures);
    EXPECT_EQ(stats.completed, successes);
    EXPECT_EQ(stats.timeouts + stats.errors,
              typed_failures + 0);  // no submit-time bad inputs here
  }

  // ---- Recovery: faults gone, the server must serve again. ---------
  injector.reset();
  bool recovered = false;
  for (int attempt = 0; attempt < 20 && !recovered; ++attempt) {
    try {
      const core::SegmentationResult result =
          server.segment(volumes[0]);
      for (int64_t v = 0; v < result.mask.tensor().numel(); ++v) {
        ASSERT_EQ(result.mask.tensor()[v], reference[0].mask.tensor()[v]);
      }
      recovered = true;
    } catch (const ServeError&) {
      // Breaker may still be half-open; give the probe a beat.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(recovered) << "server did not resume serving after faults";
  EXPECT_EQ(server.health(), HealthState::kHealthy);
}

}  // namespace
}  // namespace dmis::serve
