// Chaos test for the fault-tolerance subsystem: a tune sweep with
// injected trial crashes, a worker preemption, and a checkpoint-write
// fault must still terminate every trial, resume retried trials from
// their last durable checkpoint, and select the same best trial as a
// fault-free run. Serial execution (1 GPU) keeps the fault schedule
// fully deterministic.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "nn/checkpoint.hpp"
#include "raylite/tune.hpp"
#include "tensor/ndarray.hpp"

namespace dmis {
namespace {

constexpr int64_t kIters = 6;

/// Known metric optimum at lr = 1e-4 (same shape as tune_test's).
double quality(double lr) {
  return 1.0 - std::fabs(std::log10(lr) + 4.0) / 10.0;
}

std::vector<ray::ParamSet> lr_grid8() {
  ray::SearchSpace space;
  space.choice("lr", {1e-3, 3e-4, 1e-4, 3e-5, 1e-5, 3e-6, 1e-6, 3e-7});
  return space.grid();
}

struct AttemptRecord {
  int64_t start = 0;        ///< reporter.start_iteration() at entry
  int64_t loaded_iter = 0;  ///< iteration restored from checkpoint
  bool had_checkpoint = false;
};
using AttemptLog = std::map<std::string, std::vector<AttemptRecord>>;

/// A checkpointing trainable: a 1-element "model" accumulates lr per
/// iteration, durably checkpointed each step (state + iteration count).
/// On retry it restores from the checkpoint and verifies the restored
/// state is exactly what `loaded_iter` training steps produce — a
/// restart-from-zero or torn checkpoint makes the trial throw.
ray::Trainable make_trainable(AttemptLog* log, std::mutex* mu) {
  return [log, mu](const ray::ParamSet& params, ray::Reporter& reporter) {
    const double lr = ray::param_double(params, "lr");
    const std::string ckpt = reporter.checkpoint_dir() + "/model.bin";

    NDArray weight(Shape{1}, 0.0F);
    NDArray weight_grad(Shape{1});
    NDArray iter_count(Shape{1}, 0.0F);
    NDArray iter_grad(Shape{1});
    std::vector<nn::Param> state{{"weight", &weight, &weight_grad},
                                 {"iter", &iter_count, &iter_grad}};

    AttemptRecord record;
    record.start = reporter.start_iteration();
    int64_t done = 0;
    if (std::filesystem::exists(ckpt)) {
      nn::load_checkpoint(ckpt, state);
      done = static_cast<int64_t>(iter_count[0]);
      record.had_checkpoint = true;
      record.loaded_iter = done;
      DMIS_ASSERT(std::fabs(weight[0] - static_cast<float>(lr) *
                                            static_cast<float>(done)) < 1e-4F,
                  "restored weight inconsistent with " << done << " steps");
      // save-then-report ordering guarantees the checkpoint is at least
      // as fresh as the progress the scheduler saw.
      DMIS_ASSERT(done >= record.start, "checkpoint older than reported");
    }
    {
      const std::lock_guard<std::mutex> lock(*mu);
      (*log)[reporter.checkpoint_dir()].push_back(record);
    }

    auto& faults = common::FaultInjector::instance();
    for (int64_t it = done; it < kIters; ++it) {
      weight[0] += static_cast<float>(lr);  // "one training step"
      iter_count[0] = static_cast<float>(it + 1);
      nn::save_checkpoint(ckpt, state);  // durable before reporting
      reporter.report(it, {{"val_dice", quality(lr) *
                                            static_cast<double>(it + 1) /
                                            static_cast<double>(kIters)}});
      // Trial-crash failure point: fires after the step is durable, so
      // every chaos-induced retry must resume with start_iteration > 0.
      faults.maybe_fail("chaos.step");
    }
  };
}

class ChaosTuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    root_ = std::filesystem::temp_directory_path() /
            ("dmis_chaos_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    std::filesystem::remove_all(root_);
  }
  std::filesystem::path root_;
};

TEST_F(ChaosTuneTest, SweepSurvivesInjectedCrashesAndResumes) {
  ray::TuneOptions opts;
  opts.num_gpus = 1;  // serial: deterministic fault schedule
  opts.retry.max_retries = 6;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;

  // Reference: the same sweep with every failure point disarmed.
  std::mutex mu;
  AttemptLog reference_log;
  opts.checkpoint_root = (root_ / "fault_free").string();
  const ray::TuneResult reference =
      ray::tune_run(make_trainable(&reference_log, &mu), lr_grid8(), opts);
  ASSERT_EQ(reference.count(ray::TrialStatus::kTerminated), 8);
  ASSERT_EQ(reference.transient_failures(), 0);
  const ray::Trial& ref_best = reference.best("val_dice");

  // Chaos run: >= 3 mid-training crashes (every 13th durable step out
  // of >= 48), one worker preemption before a trainable even runs, and
  // one checkpoint-write fault (the 20th of >= 48 saves).
  auto& faults = common::FaultInjector::instance();
  faults.seed(1234);
  faults.arm_every_n("chaos.step", 13);
  faults.arm_nth_call("raylite.task", 3);
  faults.arm_nth_call("checkpoint.save.write", 20);

  AttemptLog chaos_log;
  ray::TuneOptions chaos_opts = opts;
  chaos_opts.checkpoint_root = (root_ / "chaos").string();
  const ray::TuneResult result =
      ray::tune_run(make_trainable(&chaos_log, &mu), lr_grid8(), chaos_opts);

  const int64_t step_crashes = faults.fires("chaos.step");
  const int64_t preemptions = faults.fires("raylite.task");
  const int64_t write_faults = faults.fires("checkpoint.save.write");
  EXPECT_GE(step_crashes, 3);
  EXPECT_EQ(preemptions, 1);
  EXPECT_EQ(write_faults, 1);

  // Every trial terminates despite the faults; none is abandoned.
  EXPECT_EQ(result.count(ray::TrialStatus::kTerminated), 8);
  EXPECT_EQ(result.count(ray::TrialStatus::kError), 0);
  EXPECT_EQ(result.count(ray::TrialStatus::kFailed), 0);
  for (const ray::Trial& t : result.trials) {
    EXPECT_EQ(t.iterations, kIters) << "trial " << t.id;
  }

  // Each fired fault aborted exactly one attempt, and each aborted
  // attempt was rescheduled.
  EXPECT_EQ(result.transient_failures(),
            step_crashes + preemptions + write_faults);

  // Retried trials resumed from their checkpoints: every chaos-step
  // crash happened after >= 1 durable iteration, so at least that many
  // attempts started past zero — with on-disk state matching the
  // iteration count exactly (verified inside the trainable).
  int64_t resumed_attempts = 0;
  for (const auto& [dir, attempts] : chaos_log) {
    for (size_t a = 0; a < attempts.size(); ++a) {
      if (a == 0) {
        EXPECT_EQ(attempts[a].start, 0);
        continue;
      }
      if (attempts[a].start > 0) {
        ++resumed_attempts;
        EXPECT_TRUE(attempts[a].had_checkpoint);
        EXPECT_GE(attempts[a].loaded_iter, attempts[a].start);
      }
    }
  }
  EXPECT_GE(resumed_attempts, step_crashes);

  // Fault-free and chaos runs agree: same best trial, same metrics.
  const ray::Trial& best = result.best("val_dice");
  EXPECT_DOUBLE_EQ(ray::param_double(best.params, "lr"),
                   ray::param_double(ref_best.params, "lr"));
  EXPECT_DOUBLE_EQ(best.last_metrics.at("val_dice"),
                   ref_best.last_metrics.at("val_dice"));
  for (size_t i = 0; i < result.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trials[i].last_metrics.at("val_dice"),
                     reference.trials[i].last_metrics.at("val_dice"))
        << "trial " << i;
  }
}

// Same sweep, randomized faults: probability-triggered crashes with a
// fixed seed are reproducible, and the sweep still completes as long as
// the retry budget absorbs the crash rate.
TEST_F(ChaosTuneTest, SeededRandomCrashesAreSurvivable) {
  auto& faults = common::FaultInjector::instance();
  faults.seed(99);
  faults.arm_probability("chaos.step", 0.05);

  std::mutex mu;
  AttemptLog log;
  ray::TuneOptions opts;
  opts.num_gpus = 1;
  opts.retry.max_retries = 10;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  opts.checkpoint_root = (root_ / "random").string();
  const ray::TuneResult result =
      ray::tune_run(make_trainable(&log, &mu), lr_grid8(), opts);

  EXPECT_EQ(result.count(ray::TrialStatus::kTerminated), 8);
  EXPECT_EQ(result.count(ray::TrialStatus::kError), 0);
  EXPECT_EQ(result.count(ray::TrialStatus::kFailed), 0);
  EXPECT_EQ(result.transient_failures(), faults.fires("chaos.step"));
  EXPECT_DOUBLE_EQ(ray::param_double(result.best("val_dice").params, "lr"),
                   1e-4);
}

}  // namespace
}  // namespace dmis
