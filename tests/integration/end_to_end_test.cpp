// Cross-module integration: the flows a downstream user actually runs,
// exercised end to end — records on disk through the pipeline into each
// training strategy, checkpoint/resume, and tuned searches with early
// stopping.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "core/pipeline.hpp"
#include "nn/checkpoint.hpp"
#include "nn/infer.hpp"
#include "train/pipeline_parallel.hpp"

namespace dmis {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dmis_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  core::PipelineOptions options() {
    core::PipelineOptions opts;
    opts.work_dir = dir_.string();
    opts.num_subjects = 12;
    opts.phantom.depth = 9;
    opts.phantom.height = 8;
    opts.phantom.width = 8;
    opts.model_depth = 2;
    return opts;
  }

  core::ExperimentConfig config() {
    core::ExperimentConfig cfg;
    cfg.base_filters = 2;
    cfg.epochs = 6;
    cfg.lr = 3e-3;
    cfg.batch_per_replica = 2;
    return cfg;
  }

  std::filesystem::path dir_;
};

TEST_F(EndToEndTest, AllThreeStrategiesProduceUsableModels) {
  core::DistMisPipeline pipeline(options());
  pipeline.prepare();

  const auto single = pipeline.run_single(config());
  const auto mirrored = pipeline.run_data_parallel(config(), 2);
  EXPECT_TRUE(std::isfinite(single.history.back().train_loss));
  EXPECT_TRUE(std::isfinite(mirrored.history.back().train_loss));

  // Pipeline-parallel on the same records.
  train::PipelineParallelOptions popt;
  popt.num_microbatches = 2;
  popt.train.epochs = 6;
  popt.train.lr = 3e-3;
  train::PipelineParallelStrategy staged(pipeline.model_options(config()),
                                         popt);
  data::BatchStream train(pipeline.train_stream(false), 4);
  data::BatchStream val(pipeline.val_stream(), 2);
  const auto piped = staged.fit(train, &val);
  EXPECT_TRUE(std::isfinite(piped.history.back().train_loss));
  EXPECT_GT(piped.best_val_dice, 0.0);
}

TEST_F(EndToEndTest, CheckpointResumeContinuesImproving) {
  core::DistMisPipeline pipeline(options());
  pipeline.prepare();
  const std::string ckpt = (dir_ / "best.ckpt").string();

  // Phase 1: short training with checkpointing.
  core::ExperimentConfig cfg = config();
  nn::UNet3d model(pipeline.model_options(cfg));
  train::TrainOptions topt;
  topt.epochs = 4;
  topt.lr = cfg.lr;
  topt.checkpoint_path = ckpt;
  train::Trainer trainer(model, topt);
  data::BatchStream train(pipeline.train_stream(false), 2);
  data::BatchStream val(pipeline.val_stream(), 2);
  const auto phase1 = trainer.fit(train, &val);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // Phase 2: fresh process-analog — new model object, restore, resume.
  nn::UNet3d resumed(pipeline.model_options(cfg));
  auto params = resumed.checkpoint_params();
  nn::load_checkpoint(ckpt, params);
  train::Trainer trainer2(resumed, topt);
  const auto phase2 = trainer2.fit(train, &val);
  // Resumed training must at least hold the phase-1 quality.
  EXPECT_GE(phase2.best_val_dice, phase1.best_val_dice - 0.05);
}

TEST_F(EndToEndTest, TuneWithAshaOverRealPipeline) {
  core::DistMisPipeline pipeline(options());
  pipeline.prepare();
  std::vector<core::ExperimentConfig> configs;
  for (double lr : {3e-3, 1e-3, 3e-4, 1e-6}) {
    core::ExperimentConfig cfg = config();
    cfg.lr = lr;
    configs.push_back(cfg);
  }
  ray::AshaOptions asha;
  asha.grace_period = 2;
  asha.reduction_factor = 2;
  const ray::TuneResult result =
      pipeline.run_experiment_parallel(configs, 1, asha);
  EXPECT_EQ(static_cast<size_t>(result.count(ray::TrialStatus::kTerminated) +
                                result.count(ray::TrialStatus::kStopped)),
            configs.size());
  EXPECT_NO_THROW(result.best("val_dice"));
}

TEST_F(EndToEndTest, TrainedModelServesArbitraryGeometry) {
  core::DistMisPipeline pipeline(options());
  pipeline.prepare();
  core::ExperimentConfig cfg = config();
  nn::UNet3d model(pipeline.model_options(cfg));
  // Volume geometry the pipeline never produced (7x9x10, indivisible).
  NDArray odd(Shape{1, 4, 7, 9, 10});
  Rng rng(5);
  for (int64_t i = 0; i < odd.numel(); ++i) {
    odd[i] = static_cast<float>(rng.normal());
  }
  const NDArray out = nn::infer_padded(model, odd);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 7, 9, 10}));
}

TEST_F(EndToEndTest, AugmentedTrainingStillConverges) {
  core::DistMisPipeline pipeline(options());
  core::ExperimentConfig cfg = config();
  cfg.augment = true;
  cfg.epochs = 8;
  const auto report = pipeline.run_single(cfg);
  EXPECT_LT(report.history.back().train_loss,
            report.history.front().train_loss);
}

}  // namespace
}  // namespace dmis
