#include "nn/layers/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"

namespace dmis::nn {
namespace {

TEST(ReLUTest, ClampsNegatives) {
  ReLU relu;
  NDArray in(Shape{4}, std::vector<float>{-2.0F, -0.0F, 0.5F, 3.0F});
  const NDArray out = relu.forward1(in, true);
  EXPECT_FLOAT_EQ(out[0], 0.0F);
  EXPECT_FLOAT_EQ(out[1], 0.0F);
  EXPECT_FLOAT_EQ(out[2], 0.5F);
  EXPECT_FLOAT_EQ(out[3], 3.0F);
}

TEST(ReLUTest, BackwardMasks) {
  ReLU relu;
  NDArray in(Shape{3}, std::vector<float>{-1.0F, 2.0F, -3.0F});
  (void)relu.forward1(in, true);
  NDArray go(Shape{3}, 5.0F);
  const auto g = relu.backward(go);
  EXPECT_FLOAT_EQ(g[0][0], 0.0F);
  EXPECT_FLOAT_EQ(g[0][1], 5.0F);
  EXPECT_FLOAT_EQ(g[0][2], 0.0F);
}

TEST(ReLUTest, GradCheckAwayFromKink) {
  ReLU relu;
  // Keep |x| > eps so the finite difference never straddles zero.
  NDArray in(Shape{2, 3});
  const float vals[6] = {-0.9F, -0.4F, 0.3F, 0.8F, -0.2F, 0.6F};
  for (int64_t i = 0; i < 6; ++i) in[i] = vals[i];
  std::vector<NDArray> inputs;
  inputs.push_back(std::move(in));
  testing::GradCheckOptions opts;
  opts.eps = 1e-2F;
  testing::expect_gradients_match_on(relu, std::move(inputs), opts);
}

TEST(SigmoidTest, KnownValues) {
  Sigmoid sig;
  NDArray in(Shape{3}, std::vector<float>{0.0F, 100.0F, -100.0F});
  const NDArray out = sig.forward1(in, true);
  EXPECT_FLOAT_EQ(out[0], 0.5F);
  EXPECT_NEAR(out[1], 1.0F, 1e-6F);
  EXPECT_NEAR(out[2], 0.0F, 1e-6F);
}

TEST(SigmoidTest, OutputsAreProbabilities) {
  Sigmoid sig;
  NDArray in(Shape{100});
  Rng rng(4);
  testing::fill_uniform(in, rng, -50.0F, 50.0F);
  const NDArray out = sig.forward1(in, true);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0F);
    EXPECT_LE(out[i], 1.0F);
  }
}

TEST(SigmoidTest, GradCheck) {
  Sigmoid sig;
  testing::expect_gradients_match(sig, {Shape{2, 5}});
}

TEST(SigmoidTest, DerivativePeaksAtZero) {
  Sigmoid sig;
  NDArray in(Shape{1}, 0.0F);
  (void)sig.forward1(in, true);
  NDArray go(Shape{1}, 1.0F);
  const auto g = sig.backward(go);
  EXPECT_FLOAT_EQ(g[0][0], 0.25F);
}

}  // namespace
}  // namespace dmis::nn
