#include "nn/layers/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

TEST(BatchNormTest, NormalizesToZeroMeanUnitVar) {
  BatchNorm bn(3);
  Rng rng(5);
  NDArray in(Shape{4, 3, 2, 2, 2});
  testing::fill_uniform(in, rng, -3.0F, 7.0F);
  const NDArray out = bn.forward1(in, true);

  const int64_t spatial = 8;
  const int64_t ns = 3 * spatial;
  for (int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t i = 0; i < spatial; ++i) {
        const float v = out[n * ns + c * spatial + i];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    const double count = 4.0 * spatial;
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, GammaBetaAffine) {
  BatchNorm bn(1);
  auto params = bn.params();
  params[0].value->fill(2.0F);  // gamma
  params[1].value->fill(1.0F);  // beta
  Rng rng(6);
  NDArray in(Shape{8, 1, 2, 2, 2});
  testing::fill_uniform(in, rng, -1.0F, 1.0F);
  const NDArray out = bn.forward1(in, true);
  // out = 2*x_hat + 1, so the mean must be ~1 and variance ~4.
  EXPECT_NEAR(out.mean(), 1.0, 1e-4);
  double var = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    var += (out[i] - 1.0) * (out[i] - 1.0);
  }
  EXPECT_NEAR(var / static_cast<double>(out.numel()), 4.0, 0.05);
}

TEST(BatchNormTest, RunningStatsConvergeToBatchStats) {
  BatchNorm bn(1, /*momentum=*/0.0F);  // adopt batch stats immediately
  NDArray in(Shape{4, 1, 2, 2, 2});
  Rng rng(7);
  testing::fill_uniform(in, rng, 2.0F, 4.0F);
  (void)bn.forward1(in, true);
  double mean = in.mean();
  EXPECT_NEAR(bn.running_mean()[0], mean, 1e-4);
  double var = 0.0;
  for (int64_t i = 0; i < in.numel(); ++i) {
    var += (in[i] - mean) * (in[i] - mean);
  }
  var /= static_cast<double>(in.numel());
  EXPECT_NEAR(bn.running_var()[0], var, 1e-3);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  BatchNorm bn(1, 0.0F);
  NDArray train_in(Shape{4, 1, 2, 2, 2});
  Rng rng(8);
  testing::fill_uniform(train_in, rng, -1.0F, 1.0F);
  (void)bn.forward1(train_in, true);

  // In eval mode a constant input maps through the frozen affine transform;
  // different constants map consistently (no batch statistics involved).
  NDArray a(Shape{1, 1, 2, 2, 2}, 0.0F);
  NDArray b(Shape{1, 1, 2, 2, 2}, 1.0F);
  const NDArray ya = bn.forward1(a, false);
  const NDArray yb = bn.forward1(b, false);
  const float scale = yb[0] - ya[0];
  EXPECT_GT(scale, 0.0F);  // monotone affine map
  // All voxels identical for constant input.
  for (int64_t i = 1; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], ya[0]);
}

TEST(BatchNormTest, GradCheckTrainingMode) {
  BatchNorm bn(2);
  testing::GradCheckOptions opts;
  opts.tol = 3e-2F;  // batch-coupled derivative is noisier in fp32
  testing::expect_gradients_match(bn, {Shape{3, 2, 2, 2, 2}}, opts);
}

TEST(BatchNormTest, GradCheckEvalMode) {
  BatchNorm bn(2);
  // Populate running stats first.
  Rng rng(9);
  NDArray warm(Shape{4, 2, 2, 2, 2});
  testing::fill_uniform(warm, rng, -1.0F, 1.0F);
  (void)bn.forward1(warm, true);
  testing::GradCheckOptions opts;
  opts.training = false;
  testing::expect_gradients_match(bn, {Shape{2, 2, 2, 2, 2}}, opts);
}

TEST(BatchNormTest, RejectsWrongChannels) {
  BatchNorm bn(4);
  NDArray in(Shape{1, 3, 2, 2, 2});
  EXPECT_THROW(bn.forward1(in, true), InvalidArgument);
}

TEST(BatchNormTest, RejectsBadConstruction) {
  EXPECT_THROW(BatchNorm(0), InvalidArgument);
  EXPECT_THROW(BatchNorm(2, 1.0F), InvalidArgument);
}

}  // namespace
}  // namespace dmis::nn
