#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("dmis_ckpt_test_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CheckpointTest, RoundTripsValues) {
  NDArray w1(Shape{2, 3});
  NDArray g1(Shape{2, 3});
  NDArray w2(Shape{5});
  NDArray g2(Shape{5});
  Rng rng(3);
  for (int64_t i = 0; i < w1.numel(); ++i)
    w1[i] = static_cast<float>(rng.normal());
  for (int64_t i = 0; i < w2.numel(); ++i)
    w2[i] = static_cast<float>(rng.normal());

  std::vector<Param> params{{"layer.weight", &w1, &g1},
                            {"layer.bias", &w2, &g2}};
  save_checkpoint(path_.string(), params);

  NDArray r1(Shape{2, 3});
  NDArray r2(Shape{5});
  std::vector<Param> restored{{"layer.weight", &r1, &g1},
                              {"layer.bias", &r2, &g2}};
  load_checkpoint(path_.string(), restored);
  EXPECT_TRUE(r1.allclose(w1, 0.0F));
  EXPECT_TRUE(r2.allclose(w2, 0.0F));
}

TEST_F(CheckpointTest, MissingParamThrows) {
  NDArray w(Shape{2});
  NDArray g(Shape{2});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);
  std::vector<Param> wrong{{"b", &w, &g}};
  EXPECT_THROW(load_checkpoint(path_.string(), wrong), IoError);
}

TEST_F(CheckpointTest, ShapeMismatchThrows) {
  NDArray w(Shape{2});
  NDArray g(Shape{2});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);
  NDArray w3(Shape{3});
  NDArray g3(Shape{3});
  std::vector<Param> wrong{{"a", &w3, &g3}};
  EXPECT_THROW(load_checkpoint(path_.string(), wrong), IoError);
}

TEST_F(CheckpointTest, ExtraFileEntriesIgnored) {
  NDArray w1(Shape{2}, 1.0F);
  NDArray w2(Shape{2}, 2.0F);
  NDArray g(Shape{2});
  std::vector<Param> params{{"a", &w1, &g}, {"b", &w2, &g}};
  save_checkpoint(path_.string(), params);
  NDArray r(Shape{2});
  std::vector<Param> only_a{{"a", &r, &g}};
  load_checkpoint(path_.string(), only_a);
  EXPECT_FLOAT_EQ(r[0], 1.0F);
}

TEST_F(CheckpointTest, GarbageFileRejected) {
  {
    std::ofstream os(path_);
    os << "not a checkpoint";
  }
  NDArray w(Shape{1});
  NDArray g(Shape{1});
  std::vector<Param> params{{"a", &w, &g}};
  EXPECT_THROW(load_checkpoint(path_.string(), params), IoError);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  NDArray w(Shape{1});
  NDArray g(Shape{1});
  std::vector<Param> params{{"a", &w, &g}};
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/x.bin", params), IoError);
}

}  // namespace
}  // namespace dmis::nn
