#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    path_ = std::filesystem::temp_directory_path() /
            ("dmis_ckpt_test_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".tmp");
  }
  std::filesystem::path path_;
};

TEST_F(CheckpointTest, RoundTripsValues) {
  NDArray w1(Shape{2, 3});
  NDArray g1(Shape{2, 3});
  NDArray w2(Shape{5});
  NDArray g2(Shape{5});
  Rng rng(3);
  for (int64_t i = 0; i < w1.numel(); ++i)
    w1[i] = static_cast<float>(rng.normal());
  for (int64_t i = 0; i < w2.numel(); ++i)
    w2[i] = static_cast<float>(rng.normal());

  std::vector<Param> params{{"layer.weight", &w1, &g1},
                            {"layer.bias", &w2, &g2}};
  save_checkpoint(path_.string(), params);

  NDArray r1(Shape{2, 3});
  NDArray r2(Shape{5});
  std::vector<Param> restored{{"layer.weight", &r1, &g1},
                              {"layer.bias", &r2, &g2}};
  load_checkpoint(path_.string(), restored);
  EXPECT_TRUE(r1.allclose(w1, 0.0F));
  EXPECT_TRUE(r2.allclose(w2, 0.0F));
}

TEST_F(CheckpointTest, MissingParamThrows) {
  NDArray w(Shape{2});
  NDArray g(Shape{2});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);
  std::vector<Param> wrong{{"b", &w, &g}};
  EXPECT_THROW(load_checkpoint(path_.string(), wrong), IoError);
}

TEST_F(CheckpointTest, ShapeMismatchThrows) {
  NDArray w(Shape{2});
  NDArray g(Shape{2});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);
  NDArray w3(Shape{3});
  NDArray g3(Shape{3});
  std::vector<Param> wrong{{"a", &w3, &g3}};
  EXPECT_THROW(load_checkpoint(path_.string(), wrong), IoError);
}

TEST_F(CheckpointTest, ExtraFileEntriesIgnored) {
  NDArray w1(Shape{2}, 1.0F);
  NDArray w2(Shape{2}, 2.0F);
  NDArray g(Shape{2});
  std::vector<Param> params{{"a", &w1, &g}, {"b", &w2, &g}};
  save_checkpoint(path_.string(), params);
  NDArray r(Shape{2});
  std::vector<Param> only_a{{"a", &r, &g}};
  load_checkpoint(path_.string(), only_a);
  EXPECT_FLOAT_EQ(r[0], 1.0F);
}

TEST_F(CheckpointTest, GarbageFileRejected) {
  {
    std::ofstream os(path_);
    os << "not a checkpoint";
  }
  NDArray w(Shape{1});
  NDArray g(Shape{1});
  std::vector<Param> params{{"a", &w, &g}};
  EXPECT_THROW(load_checkpoint(path_.string(), params), IoError);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  NDArray w(Shape{1});
  NDArray g(Shape{1});
  std::vector<Param> params{{"a", &w, &g}};
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/x.bin", params), IoError);
}

TEST_F(CheckpointTest, TruncatedFileThrowsTypedError) {
  NDArray w(Shape{64});
  NDArray g(Shape{64});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = static_cast<float>(i);
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);

  // Chop the file at several points: inside the payload and inside the
  // header. Every truncation must surface as CheckpointError.
  const auto full_size = std::filesystem::file_size(path_);
  for (const auto keep :
       {full_size - 1, full_size / 2, static_cast<uintmax_t>(10)}) {
    std::filesystem::resize_file(path_, keep);
    NDArray r(Shape{64});
    std::vector<Param> restored{{"a", &r, &g}};
    EXPECT_THROW(load_checkpoint(path_.string(), restored), CheckpointError)
        << "truncated to " << keep << " of " << full_size << " bytes";
    save_checkpoint(path_.string(), params);  // restore for next round
  }
}

TEST_F(CheckpointTest, BitFlipThrowsTypedError) {
  NDArray w(Shape{32});
  NDArray g(Shape{32});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = static_cast<float>(i);
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);

  // Flip one byte in the middle of the payload.
  std::fstream fs(path_, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekp(static_cast<std::streamoff>(
      std::filesystem::file_size(path_) / 2));
  char byte = 0;
  fs.seekg(fs.tellp());
  fs.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  fs.seekp(fs.tellg() - std::streamoff{1});
  fs.write(&byte, 1);
  fs.close();

  NDArray r(Shape{32});
  std::vector<Param> restored{{"a", &r, &g}};
  EXPECT_THROW(load_checkpoint(path_.string(), restored), CheckpointError);
  // Typed error still matches generic I/O handling.
  EXPECT_THROW(load_checkpoint(path_.string(), restored), IoError);
}

TEST_F(CheckpointTest, CrashMidWritePreservesOldCheckpoint) {
  NDArray w(Shape{16}, 1.0F);
  NDArray g(Shape{16});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);  // the "old" good checkpoint

  // Kill the next save mid-stream; the destination must be untouched.
  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("checkpoint.save.write", 1);
  w.fill(2.0F);
  EXPECT_THROW(save_checkpoint(path_.string(), params),
               common::FaultInjected);

  NDArray r(Shape{16});
  std::vector<Param> restored{{"a", &r, &g}};
  load_checkpoint(path_.string(), restored);  // old file loads cleanly
  EXPECT_FLOAT_EQ(r[0], 1.0F);
  // And the torn temp file was cleaned up, not left to be mistaken for
  // a checkpoint later.
  EXPECT_FALSE(std::filesystem::exists(path_.string() + ".tmp"));
}

TEST_F(CheckpointTest, CrashBeforeRenamePreservesOldCheckpoint) {
  NDArray w(Shape{8}, 3.0F);
  NDArray g(Shape{8});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(path_.string(), params);

  auto& faults = common::FaultInjector::instance();
  faults.arm_nth_call("checkpoint.save.rename", 1);
  w.fill(4.0F);
  EXPECT_THROW(save_checkpoint(path_.string(), params),
               common::FaultInjected);

  NDArray r(Shape{8});
  std::vector<Param> restored{{"a", &r, &g}};
  load_checkpoint(path_.string(), restored);
  EXPECT_FLOAT_EQ(r[0], 3.0F);

  // The retry (fault budget spent) completes and replaces the file.
  save_checkpoint(path_.string(), params);
  load_checkpoint(path_.string(), restored);
  EXPECT_FLOAT_EQ(r[0], 4.0F);
}

TEST_F(CheckpointTest, SweepRemovesOnlyStaleTmpFiles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("dmis_sweep_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  {
    std::ofstream a(dir / "model.ckpt.tmp");
    a << "torn";
    std::ofstream b(dir / "other.tmp");
    b << "torn too";
    std::ofstream keep(dir / "model.ckpt");
    keep << "real";
  }
  EXPECT_EQ(sweep_stale_checkpoints(dir.string()), 2);
  EXPECT_FALSE(std::filesystem::exists(dir / "model.ckpt.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir / "other.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir / "model.ckpt"));
  // Idempotent: nothing left to sweep.
  EXPECT_EQ(sweep_stale_checkpoints(dir.string()), 0);
  std::filesystem::remove_all(dir);
}

TEST_F(CheckpointTest, SweepMissingDirIsNoop) {
  EXPECT_EQ(sweep_stale_checkpoints("/nonexistent/dir/for/sweep"), 0);
}

TEST_F(CheckpointTest, SweepReclaimsCrashedSaveLeftovers) {
  // Simulate a crash between write and rename: the .tmp this save aborts
  // on is exactly what a restart's sweep must clear.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("dmis_sweep_crash_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "elastic.ckpt").string();
  {
    std::ofstream stale(ckpt + ".tmp");
    stale << "leftover from a crashed process";
  }
  EXPECT_EQ(sweep_stale_checkpoints(dir.string()), 1);

  // A fresh save then lands cleanly where the leftover used to be.
  NDArray w(Shape{4}, 5.0F);
  NDArray g(Shape{4});
  std::vector<Param> params{{"a", &w, &g}};
  save_checkpoint(ckpt, params);
  NDArray r(Shape{4});
  std::vector<Param> restored{{"a", &r, &g}};
  load_checkpoint(ckpt, restored);
  EXPECT_FLOAT_EQ(r[0], 5.0F);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dmis::nn
