#include "nn/layers/concat.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace dmis::nn {
namespace {

TEST(ConcatTest, StacksChannels) {
  Concat cat(2);
  NDArray a(Shape{1, 2, 1, 1, 2}, 1.0F);
  NDArray b(Shape{1, 3, 1, 1, 2}, 2.0F);
  const NDArray* ins[2] = {&a, &b};
  const NDArray out =
      cat.forward(std::span<const NDArray* const>(ins, 2), true);
  ASSERT_EQ(out.shape(), (Shape{1, 5, 1, 1, 2}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], 1.0F);
  for (int64_t i = 4; i < 10; ++i) EXPECT_FLOAT_EQ(out[i], 2.0F);
}

TEST(ConcatTest, PerBatchInterleaving) {
  Concat cat(2);
  NDArray a(Shape{2, 1, 1, 1, 1});
  NDArray b(Shape{2, 1, 1, 1, 1});
  a[0] = 1.0F; a[1] = 3.0F;
  b[0] = 2.0F; b[1] = 4.0F;
  const NDArray* ins[2] = {&a, &b};
  const NDArray out =
      cat.forward(std::span<const NDArray* const>(ins, 2), true);
  // Batch 0: [1, 2]; batch 1: [3, 4].
  EXPECT_FLOAT_EQ(out[0], 1.0F);
  EXPECT_FLOAT_EQ(out[1], 2.0F);
  EXPECT_FLOAT_EQ(out[2], 3.0F);
  EXPECT_FLOAT_EQ(out[3], 4.0F);
}

TEST(ConcatTest, BackwardSplitsGradient) {
  Concat cat(2);
  NDArray a(Shape{1, 1, 1, 1, 2}, 0.0F);
  NDArray b(Shape{1, 2, 1, 1, 2}, 0.0F);
  const NDArray* ins[2] = {&a, &b};
  (void)cat.forward(std::span<const NDArray* const>(ins, 2), true);
  NDArray go(Shape{1, 3, 1, 1, 2});
  for (int64_t i = 0; i < 6; ++i) go[i] = static_cast<float>(i);
  const auto grads = cat.backward(go);
  ASSERT_EQ(grads.size(), 2U);
  EXPECT_EQ(grads[0].shape(), a.shape());
  EXPECT_EQ(grads[1].shape(), b.shape());
  EXPECT_FLOAT_EQ(grads[0][0], 0.0F);
  EXPECT_FLOAT_EQ(grads[0][1], 1.0F);
  EXPECT_FLOAT_EQ(grads[1][0], 2.0F);
  EXPECT_FLOAT_EQ(grads[1][3], 5.0F);
}

TEST(ConcatTest, RejectsMismatchedSpatialDims) {
  Concat cat(2);
  NDArray a(Shape{1, 1, 2, 2, 2});
  NDArray b(Shape{1, 1, 2, 2, 3});
  const NDArray* ins[2] = {&a, &b};
  EXPECT_THROW(cat.forward(std::span<const NDArray* const>(ins, 2), true),
               InvalidArgument);
}

TEST(ConcatTest, RejectsWrongInputCount) {
  Concat cat(2);
  NDArray a(Shape{1, 1, 2, 2, 2});
  const NDArray* ins[1] = {&a};
  EXPECT_THROW(cat.forward(std::span<const NDArray* const>(ins, 1), true),
               InvalidArgument);
}

TEST(ConcatTest, GradCheckThreeWay) {
  Concat cat(3);
  testing::expect_gradients_match(
      cat, {Shape{2, 1, 2, 2, 2}, Shape{2, 2, 2, 2, 2}, Shape{2, 1, 2, 2, 2}});
}

}  // namespace
}  // namespace dmis::nn
