#include "nn/layers/conv3d.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace dmis::nn {
namespace {

using testing::expect_gradients_match;
using testing::for_each_kernel_backend;
using testing::GradCheckOptions;

TEST(Conv3dTest, OutputShapeSamePadding) {
  Rng rng(1);
  Conv3d conv(4, 8, 3, 1, 1, rng);
  NDArray in(Shape{2, 4, 6, 6, 4});
  const NDArray out = conv.forward1(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 8, 6, 6, 4}));
}

TEST(Conv3dTest, OutputShapeStride2NoPad) {
  Rng rng(1);
  Conv3d conv(1, 2, 2, 2, 0, rng);
  NDArray in(Shape{1, 1, 8, 6, 4});
  const NDArray out = conv.forward1(in, true);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 4, 3, 2}));
}

TEST(Conv3dTest, IdentityKernelReproducesInput) {
  Rng rng(1);
  Conv3d conv(1, 1, 1, 1, 0, rng);
  conv.weight().fill(1.0F);
  conv.bias().fill(0.0F);
  NDArray in(Shape{1, 1, 3, 3, 3});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = static_cast<float>(i);
  const NDArray out = conv.forward1(in, true);
  EXPECT_TRUE(out.allclose(in));
}

TEST(Conv3dTest, KnownValueAveragingKernel) {
  // A 3x3x3 all-ones kernel with zero padding sums the 27-neighborhood.
  Rng rng(1);
  Conv3d conv(1, 1, 3, 1, 1, rng);
  conv.weight().fill(1.0F);
  conv.bias().fill(0.5F);
  NDArray in(Shape{1, 1, 3, 3, 3}, 1.0F);
  const NDArray out = conv.forward1(in, true);
  // Center voxel sees all 27 ones; corner voxel sees 8.
  EXPECT_FLOAT_EQ(out[13], 27.0F + 0.5F);
  EXPECT_FLOAT_EQ(out[0], 8.0F + 0.5F);
}

TEST(Conv3dTest, BiasShiftsOutputUniformly) {
  Rng rng(3);
  Conv3d conv(2, 3, 3, 1, 1, rng);
  NDArray in(Shape{1, 2, 4, 4, 4});
  testing::fill_uniform(in, rng, -1.0F, 1.0F);
  const NDArray base = conv.forward1(in, true);
  conv.bias().fill(2.0F);
  const NDArray shifted = conv.forward1(in, true);
  for (int64_t i = 0; i < base.numel(); ++i) {
    EXPECT_NEAR(shifted[i] - base[i], 2.0F, 1e-5F);
  }
}

TEST(Conv3dTest, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv3d conv(4, 8, 3, 1, 1, rng);
  NDArray in(Shape{1, 3, 8, 8, 8});
  EXPECT_THROW(conv.forward1(in, true), InvalidArgument);
}

TEST(Conv3dTest, GradCheck3x3x3SamePadding) {
  for_each_kernel_backend([](KernelBackend) {
    Rng rng(2);
    Conv3d conv(2, 2, 3, 1, 1, rng);
    expect_gradients_match(conv, {Shape{2, 2, 3, 3, 3}});
  });
}

TEST(Conv3dTest, GradCheck1x1x1Head) {
  for_each_kernel_backend([](KernelBackend) {
    Rng rng(2);
    Conv3d conv(3, 1, 1, 1, 0, rng);
    expect_gradients_match(conv, {Shape{2, 3, 2, 3, 2}});
  });
}

TEST(Conv3dTest, GradCheckStride2) {
  for_each_kernel_backend([](KernelBackend) {
    Rng rng(2);
    Conv3d conv(1, 2, 2, 2, 0, rng);
    expect_gradients_match(conv, {Shape{1, 1, 4, 4, 4}});
  });
}

struct ConvGeom {
  int kernel;
  int stride;
  int padding;
};

class Conv3dGeometryTest : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Conv3dGeometryTest, OutExtentMatchesForwardShape) {
  const ConvGeom g = GetParam();
  Rng rng(4);
  Conv3d conv(1, 1, g.kernel, g.stride, g.padding, rng);
  const int64_t D = 7, H = 6, W = 5;
  if (conv.out_extent(D) <= 0 || conv.out_extent(H) <= 0 ||
      conv.out_extent(W) <= 0) {
    GTEST_SKIP() << "geometry collapses output";
  }
  NDArray in(Shape{1, 1, D, H, W}, 1.0F);
  const NDArray out = conv.forward1(in, true);
  EXPECT_EQ(out.shape().d(), conv.out_extent(D));
  EXPECT_EQ(out.shape().dim(3), conv.out_extent(H));
  EXPECT_EQ(out.shape().dim(4), conv.out_extent(W));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv3dGeometryTest,
    ::testing::Values(ConvGeom{1, 1, 0}, ConvGeom{3, 1, 1},
                      ConvGeom{3, 2, 1}, ConvGeom{2, 2, 0},
                      ConvGeom{5, 1, 2}, ConvGeom{3, 3, 0}),
    [](const ::testing::TestParamInfo<ConvGeom>& info) {
      return "k" + std::to_string(info.param.kernel) + "s" +
             std::to_string(info.param.stride) + "p" +
             std::to_string(info.param.padding);
    });

// Gradient-check sweep across conv geometries: every (kernel, stride,
// padding) combination must have consistent analytic gradients.
class Conv3dGradSweep : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Conv3dGradSweep, GradCheck) {
  const ConvGeom g = GetParam();
  for_each_kernel_backend([&g](KernelBackend) {
    Rng rng(8);
    Conv3d conv(2, 2, g.kernel, g.stride, g.padding, rng);
    const int64_t extent = 4;
    if (conv.out_extent(extent) <= 0) GTEST_SKIP() << "output collapses";
    expect_gradients_match(conv, {Shape{1, 2, extent, extent, extent}});
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv3dGradSweep,
    ::testing::Values(ConvGeom{1, 1, 0}, ConvGeom{2, 1, 0}, ConvGeom{2, 2, 0},
                      ConvGeom{3, 1, 1}, ConvGeom{3, 2, 1}, ConvGeom{3, 1, 0},
                      ConvGeom{4, 2, 1}),
    [](const ::testing::TestParamInfo<ConvGeom>& info) {
      return "k" + std::to_string(info.param.kernel) + "s" +
             std::to_string(info.param.stride) + "p" +
             std::to_string(info.param.padding);
    });

}  // namespace
}  // namespace dmis::nn
