// Differential parity: the gemm (im2col + SGEMM) convolution backend must
// agree with the naive reference backend on forward outputs and on every
// gradient (input, weight, bias), across a seeded-random fuzz over conv
// geometry. One layer instance is flipped between backends so both run
// with identical weights; agreement is 1e-4 max-abs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gradcheck.hpp"
#include "nn/layers/conv3d.hpp"
#include "nn/layers/conv_transpose3d.hpp"

namespace dmis::nn {
namespace {

constexpr float kTol = 1e-4F;

float max_abs_diff(const NDArray& a, const NDArray& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float worst = 0.0F;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

struct BackendRun {
  NDArray output;
  NDArray grad_input;
  NDArray grad_weight;
  NDArray grad_bias;
};

/// Forward + backward under one backend, with parameter grads zeroed
/// first so runs are comparable.
template <class Layer>
BackendRun run_backend(Layer& layer, KernelBackend backend,
                       const NDArray& input, const NDArray& grad_out) {
  layer.set_backend(backend);
  for (Param& p : layer.params()) p.grad->zero();
  BackendRun r;
  r.output = layer.forward1(input, true);
  r.grad_input = std::move(layer.backward(grad_out).front());
  r.grad_weight = *layer.params()[0].grad;
  r.grad_bias = *layer.params()[1].grad;
  return r;
}

template <class Layer>
void expect_backend_parity(Layer& layer, const NDArray& input, Rng& rng) {
  const NDArray out_probe = layer.forward1(input, true);
  NDArray grad_out(out_probe.shape());
  testing::fill_uniform(grad_out, rng, -1.0F, 1.0F);

  const BackendRun naive =
      run_backend(layer, KernelBackend::kNaive, input, grad_out);
  const BackendRun gemm =
      run_backend(layer, KernelBackend::kGemm, input, grad_out);

  EXPECT_LE(max_abs_diff(naive.output, gemm.output), kTol) << "forward";
  EXPECT_LE(max_abs_diff(naive.grad_input, gemm.grad_input), kTol)
      << "grad_input";
  EXPECT_LE(max_abs_diff(naive.grad_weight, gemm.grad_weight), kTol)
      << "grad_weight";
  EXPECT_LE(max_abs_diff(naive.grad_bias, gemm.grad_bias), kTol)
      << "grad_bias";
}

template <class T, size_t N>
T pick(const T (&options)[N], Rng& rng) {
  return options[static_cast<size_t>(
      rng.uniform_int(0, static_cast<int64_t>(N) - 1))];
}

// ---------------------------------------------------------------------------
// Conv3d: fuzz over kernel 1/3/5, stride 1/2, padding 0/1, odd spatial
// extents and cin/cout in {1, 3, 8}.

TEST(ConvParityTest, Conv3dFuzz) {
  Rng rng(0xD1FFE12ULL);
  const int kernels[] = {1, 3, 5};
  const int strides[] = {1, 2};
  const int paddings[] = {0, 1};
  const int64_t channels[] = {1, 3, 8};
  const int64_t extents[] = {3, 5, 7, 9};  // odd, non-divisible extents

  int checked = 0;
  while (checked < 40) {
    const int k = pick(kernels, rng);
    const int s = pick(strides, rng);
    const int p = pick(paddings, rng);
    const int64_t cin = pick(channels, rng);
    const int64_t cout = pick(channels, rng);
    const int64_t D = pick(extents, rng);
    const int64_t H = pick(extents, rng);
    const int64_t W = pick(extents, rng);
    const int64_t N = rng.uniform_int(1, 2);

    Rng init(rng.next_u64());
    Conv3d conv(cin, cout, k, s, p, init);
    if (conv.out_extent(D) <= 0 || conv.out_extent(H) <= 0 ||
        conv.out_extent(W) <= 0) {
      continue;  // geometry collapses the output; not a valid case
    }
    SCOPED_TRACE(::testing::Message()
                 << "trial " << checked << ": k=" << k << " s=" << s
                 << " p=" << p << " cin=" << cin << " cout=" << cout
                 << " in=[" << N << "," << cin << "," << D << "," << H << ","
                 << W << "]");
    NDArray input(Shape{N, cin, D, H, W});
    testing::fill_uniform(input, rng, -1.0F, 1.0F);
    expect_backend_parity(conv, input, rng);
    ++checked;
  }
}

// Deterministic coverage of the geometry grid the fuzzer samples from,
// so a parity break in any single (k, s, p) cell names itself.
struct ConvGeom {
  int kernel;
  int stride;
  int padding;
};

class ConvParityGrid : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(ConvParityGrid, Conv3dForwardBackwardAgree) {
  const ConvGeom g = GetParam();
  Rng rng(77);
  Conv3d conv(3, 8, g.kernel, g.stride, g.padding, rng);
  const int64_t D = 7, H = 5, W = 9;
  if (conv.out_extent(D) <= 0 || conv.out_extent(H) <= 0 ||
      conv.out_extent(W) <= 0) {
    GTEST_SKIP() << "geometry collapses output";
  }
  NDArray input(Shape{2, 3, D, H, W});
  testing::fill_uniform(input, rng, -1.0F, 1.0F);
  expect_backend_parity(conv, input, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvParityGrid,
    ::testing::Values(ConvGeom{1, 1, 0}, ConvGeom{1, 2, 0}, ConvGeom{1, 1, 1},
                      ConvGeom{3, 1, 0}, ConvGeom{3, 1, 1}, ConvGeom{3, 2, 0},
                      ConvGeom{3, 2, 1}, ConvGeom{5, 1, 1}, ConvGeom{5, 2, 2},
                      ConvGeom{2, 2, 0}),
    [](const ::testing::TestParamInfo<ConvGeom>& info) {
      return "k" + std::to_string(info.param.kernel) + "s" +
             std::to_string(info.param.stride) + "p" +
             std::to_string(info.param.padding);
    });

// ---------------------------------------------------------------------------
// ConvTranspose3d: kernel 1/2/3, stride 1/2 (its K >= S upsampling regime
// plus the gappy K < S corner), cin/cout in {1, 3, 8}.

TEST(ConvParityTest, ConvTranspose3dFuzz) {
  Rng rng(0x7A2A5E3ULL);
  const int kernels[] = {1, 2, 3};
  const int strides[] = {1, 2};
  const int64_t channels[] = {1, 3, 8};
  const int64_t extents[] = {1, 3, 5, 7};

  for (int trial = 0; trial < 30; ++trial) {
    const int k = pick(kernels, rng);
    const int s = pick(strides, rng);
    const int64_t cin = pick(channels, rng);
    const int64_t cout = pick(channels, rng);
    const int64_t D = pick(extents, rng);
    const int64_t H = pick(extents, rng);
    const int64_t W = pick(extents, rng);
    const int64_t N = rng.uniform_int(1, 2);

    Rng init(rng.next_u64());
    ConvTranspose3d up(cin, cout, k, s, init);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": k=" << k << " s=" << s
                 << " cin=" << cin << " cout=" << cout << " in=[" << N << ","
                 << cin << "," << D << "," << H << "," << W << "]");
    NDArray input(Shape{N, cin, D, H, W});
    testing::fill_uniform(input, rng, -1.0F, 1.0F);
    expect_backend_parity(up, input, rng);
  }
}

TEST(ConvParityTest, ConvTranspose3dPaperUpsampling) {
  // The exact k=2 s=2 configuration the U-Net synthesis path uses.
  Rng rng(13);
  ConvTranspose3d up(8, 8, 2, 2, rng);
  NDArray input(Shape{2, 8, 3, 5, 4});
  testing::fill_uniform(input, rng, -1.0F, 1.0F);
  expect_backend_parity(up, input, rng);
}

}  // namespace
}  // namespace dmis::nn
