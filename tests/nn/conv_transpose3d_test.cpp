#include "nn/layers/conv_transpose3d.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"

namespace dmis::nn {
namespace {

using testing::expect_gradients_match;
using testing::for_each_kernel_backend;

TEST(ConvTranspose3dTest, DoublesSpatialExtentWithK2S2) {
  Rng rng(1);
  ConvTranspose3d up(4, 4, 2, 2, rng);
  NDArray in(Shape{2, 4, 3, 5, 4});
  const NDArray out = up.forward1(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 4, 6, 10, 8}));
}

TEST(ConvTranspose3dTest, NearestNeighborUpsampleWithOnesKernel) {
  // With K=S=2 each output voxel receives exactly one stamp contribution,
  // so an all-ones kernel replicates each input voxel into a 2x2x2 block.
  Rng rng(1);
  ConvTranspose3d up(1, 1, 2, 2, rng);
  up.params()[0].value->fill(1.0F);  // weight
  up.params()[1].value->fill(0.0F);  // bias
  NDArray in(Shape{1, 1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) in[i] = static_cast<float>(i + 1);
  const NDArray out = up.forward1(in, true);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 4, 4, 4}));
  // Input voxel (0,0,0)=1 covers output corner block.
  EXPECT_FLOAT_EQ(out[0], 1.0F);
  EXPECT_FLOAT_EQ(out[1], 1.0F);
  EXPECT_FLOAT_EQ(out[4], 1.0F);
  EXPECT_FLOAT_EQ(out[5], 1.0F);
  // Input voxel (1,1,1)=8 covers the far corner.
  EXPECT_FLOAT_EQ(out[63], 8.0F);
}

TEST(ConvTranspose3dTest, ChannelMixing) {
  Rng rng(1);
  ConvTranspose3d up(2, 1, 2, 2, rng);
  up.params()[0].value->fill(1.0F);
  up.params()[1].value->fill(0.0F);
  NDArray in(Shape{1, 2, 1, 1, 1});
  in[0] = 3.0F;  // channel 0
  in[1] = 4.0F;  // channel 1
  const NDArray out = up.forward1(in, true);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2, 2}));
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(out[i], 7.0F);
}

TEST(ConvTranspose3dTest, RejectsWrongChannels) {
  Rng rng(1);
  ConvTranspose3d up(4, 4, 2, 2, rng);
  NDArray in(Shape{1, 2, 2, 2, 2});
  EXPECT_THROW(up.forward1(in, true), InvalidArgument);
}

TEST(ConvTranspose3dTest, GradCheckK2S2) {
  for_each_kernel_backend([](KernelBackend) {
    Rng rng(2);
    ConvTranspose3d up(2, 2, 2, 2, rng);
    expect_gradients_match(up, {Shape{2, 2, 2, 2, 2}});
  });
}

TEST(ConvTranspose3dTest, GradCheckK3S1) {
  for_each_kernel_backend([](KernelBackend) {
    Rng rng(2);
    ConvTranspose3d up(1, 2, 3, 1, rng);
    expect_gradients_match(up, {Shape{1, 1, 2, 2, 2}});
  });
}

}  // namespace
}  // namespace dmis::nn
