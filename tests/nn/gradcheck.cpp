#include "gradcheck.hpp"

#include <cmath>

namespace dmis::nn::testing {
namespace {

double probe(Module& module, const std::vector<NDArray>& inputs,
             const NDArray& coeffs, bool training) {
  std::vector<const NDArray*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& t : inputs) ptrs.push_back(&t);
  const NDArray out = module.forward(
      std::span<const NDArray* const>(ptrs.data(), ptrs.size()), training);
  EXPECT_EQ(out.shape(), coeffs.shape());
  double acc = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    acc += static_cast<double>(out[i]) * coeffs[i];
  }
  return acc;
}

void compare(const char* what, int64_t index, double analytic,
             double numeric, float tol) {
  const double scale = std::max(1.0, std::fabs(numeric));
  EXPECT_NEAR(analytic, numeric, tol * scale)
      << what << " element " << index;
}

}  // namespace

void fill_uniform(NDArray& t, Rng& rng, float lo, float hi) {
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

void expect_gradients_match(Module& module,
                            const std::vector<Shape>& input_shapes,
                            const GradCheckOptions& opts) {
  Rng rng(opts.seed);
  std::vector<NDArray> inputs;
  inputs.reserve(input_shapes.size());
  for (const Shape& s : input_shapes) {
    NDArray t(s);
    fill_uniform(t, rng, opts.input_lo, opts.input_hi);
    inputs.push_back(std::move(t));
  }
  expect_gradients_match_on(module, std::move(inputs), opts);
}

void expect_gradients_match_on(Module& module, std::vector<NDArray> inputs,
                               const GradCheckOptions& opts) {
  Rng rng(opts.seed ^ 0xABCDEF);

  // One forward to learn the output shape, then fixed coefficients.
  std::vector<const NDArray*> ptrs;
  for (const auto& t : inputs) ptrs.push_back(&t);
  const NDArray out0 = module.forward(
      std::span<const NDArray* const>(ptrs.data(), ptrs.size()),
      opts.training);
  NDArray coeffs(out0.shape());
  fill_uniform(coeffs, rng, -1.0F, 1.0F);

  // Analytic gradients. Parameter grads accumulate, so clear them first.
  for (Param& p : module.params()) p.grad->zero();
  (void)probe(module, inputs, coeffs, opts.training);
  const std::vector<NDArray> analytic_inputs = module.backward(coeffs);
  ASSERT_EQ(analytic_inputs.size(), inputs.size());

  std::vector<NDArray> analytic_params;
  for (Param& p : module.params()) analytic_params.push_back(*p.grad);

  // Numeric input gradients.
  for (size_t k = 0; k < inputs.size(); ++k) {
    for (int64_t i = 0; i < inputs[k].numel(); ++i) {
      const float saved = inputs[k][i];
      inputs[k][i] = saved + opts.eps;
      const double up = probe(module, inputs, coeffs, opts.training);
      inputs[k][i] = saved - opts.eps;
      const double dn = probe(module, inputs, coeffs, opts.training);
      inputs[k][i] = saved;
      const double numeric = (up - dn) / (2.0 * opts.eps);
      compare("input", i, analytic_inputs[k][i], numeric, opts.tol);
    }
  }

  // Numeric parameter gradients.
  auto params = module.params();
  for (size_t k = 0; k < params.size(); ++k) {
    NDArray& w = *params[k].value;
    for (int64_t i = 0; i < w.numel(); ++i) {
      const float saved = w[i];
      w[i] = saved + opts.eps;
      const double up = probe(module, inputs, coeffs, opts.training);
      w[i] = saved - opts.eps;
      const double dn = probe(module, inputs, coeffs, opts.training);
      w[i] = saved;
      const double numeric = (up - dn) / (2.0 * opts.eps);
      compare(params[k].name.c_str(), i, analytic_params[k][i], numeric,
              opts.tol);
    }
  }
}

void for_each_kernel_backend(const std::function<void(KernelBackend)>& fn) {
  const KernelBackend saved = default_kernel_backend();
  for (const KernelBackend backend :
       {KernelBackend::kNaive, KernelBackend::kGemm}) {
    set_default_kernel_backend(backend);
    SCOPED_TRACE(::testing::Message()
                 << "kernel backend: " << kernel_backend_name(backend));
    fn(backend);
  }
  set_default_kernel_backend(saved);
}

}  // namespace dmis::nn::testing
