// Finite-difference gradient checking for Modules.
//
// For a module M and a fixed random coefficient tensor c, define the
// scalar probe  f(inputs, params) = sum_i c_i * M(inputs)_i .
// Analytic gradients come from M.backward(c); numeric gradients from
// central differences on every input and parameter element. float32
// arithmetic limits accuracy, so comparisons use a combined
// absolute/relative tolerance.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "nn/kernels.hpp"
#include "nn/module.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn::testing {

struct GradCheckOptions {
  float eps = 1e-2F;        ///< Central-difference step.
  float tol = 2e-2F;        ///< max(|a-n|) <= tol * max(1, |n|).
  bool training = true;     ///< Mode passed to forward().
  uint64_t seed = 1234;     ///< Coefficients and input values.
  float input_lo = -1.0F;   ///< Uniform input range.
  float input_hi = 1.0F;
};

/// Fills `t` with uniform values from `rng`.
void fill_uniform(NDArray& t, Rng& rng, float lo, float hi);

/// Runs the probe check on `module` with fresh random inputs of the given
/// shapes. Reports EXPECT failures with element coordinates on mismatch.
void expect_gradients_match(Module& module,
                            const std::vector<Shape>& input_shapes,
                            const GradCheckOptions& opts = {});

/// Same check with caller-supplied inputs (e.g. tie-free values for
/// max pooling, whose numeric gradient breaks at argmax boundaries).
void expect_gradients_match_on(Module& module, std::vector<NDArray> inputs,
                               const GradCheckOptions& opts = {});

/// Invokes `fn` once per kernel backend with that backend installed as the
/// process default (so layers constructed inside `fn` pick it up), under a
/// SCOPED_TRACE naming the backend. Restores the previous default on exit.
void for_each_kernel_backend(const std::function<void(KernelBackend)>& fn);

}  // namespace dmis::nn::testing
