#include "nn/graph.hpp"

#include <gtest/gtest.h>

#include "nn/layers/activations.hpp"
#include "nn/layers/batchnorm.hpp"
#include "nn/layers/concat.hpp"
#include "nn/layers/conv3d.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

// A module computing y = 2x, used to make graph arithmetic predictable.
class Doubler final : public Module {
 public:
  std::string type() const override { return "Doubler"; }
  NDArray forward(std::span<const NDArray* const> inputs, bool) override {
    NDArray out = *inputs[0];
    out.scale_(2.0F);
    shape_ = out.shape();
    return out;
  }
  std::vector<NDArray> backward(const NDArray& go) override {
    NDArray gi = go;
    gi.scale_(2.0F);
    std::vector<NDArray> v;
    v.push_back(std::move(gi));
    return v;
  }

 private:
  Shape shape_;
};

// y = a + b, for multi-input graph topology tests.
class Adder final : public Module {
 public:
  std::string type() const override { return "Adder"; }
  int arity() const override { return 2; }
  NDArray forward(std::span<const NDArray* const> inputs, bool) override {
    NDArray out = *inputs[0];
    out.add_(*inputs[1]);
    return out;
  }
  std::vector<NDArray> backward(const NDArray& go) override {
    std::vector<NDArray> v;
    v.push_back(go);
    v.push_back(go);
    return v;
  }
};

TEST(GraphTest, LinearChainForward) {
  Graph g;
  g.add_input("x");
  g.add("d1", std::make_unique<Doubler>(), {"x"});
  g.add("d2", std::make_unique<Doubler>(), {"d1"});
  g.set_output("d2");
  NDArray x(Shape{3}, 1.0F);
  const NDArray& y = g.forward({{"x", &x}}, true);
  EXPECT_FLOAT_EQ(y[0], 4.0F);
}

TEST(GraphTest, BackwardThroughChain) {
  Graph g;
  g.add_input("x");
  g.add("d1", std::make_unique<Doubler>(), {"x"});
  g.add("d2", std::make_unique<Doubler>(), {"d1"});
  g.set_output("d2");
  NDArray x(Shape{2}, 1.0F);
  (void)g.forward({{"x", &x}}, true);
  NDArray go(Shape{2}, 1.0F);
  g.backward(go);
  EXPECT_FLOAT_EQ(g.input_grad("x")[0], 4.0F);
}

TEST(GraphTest, DiamondAccumulatesGradients) {
  // x -> d1 -> add; x -> d2 -> add. dy/dx = 2 + 2 = 4.
  Graph g;
  g.add_input("x");
  g.add("d1", std::make_unique<Doubler>(), {"x"});
  g.add("d2", std::make_unique<Doubler>(), {"x"});
  g.add("sum", std::make_unique<Adder>(), {"d1", "d2"});
  g.set_output("sum");
  NDArray x(Shape{2}, 3.0F);
  const NDArray& y = g.forward({{"x", &x}}, true);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  NDArray go(Shape{2}, 1.0F);
  g.backward(go);
  EXPECT_FLOAT_EQ(g.input_grad("x")[0], 4.0F);
}

TEST(GraphTest, SkipConnectionTopology) {
  // The U-Net pattern: a node consumed both downstream and via a skip.
  Graph g;
  g.add_input("x");
  g.add("a", std::make_unique<Doubler>(), {"x"});
  g.add("b", std::make_unique<Doubler>(), {"a"});
  g.add("skip_sum", std::make_unique<Adder>(), {"a", "b"});
  g.set_output("skip_sum");
  NDArray x(Shape{1}, 1.0F);
  const NDArray& y = g.forward({{"x", &x}}, true);
  EXPECT_FLOAT_EQ(y[0], 6.0F);  // 2x + 4x
  NDArray go(Shape{1}, 1.0F);
  g.backward(go);
  EXPECT_FLOAT_EQ(g.input_grad("x")[0], 6.0F);
}

TEST(GraphTest, BackwardMultiSeedsSeveralNodes) {
  // x -> d1 -> d2 (output). Seeding both d1 and d2 must accumulate:
  // dL/dx = 2 * (seed_d1) + 4 * (seed_d2).
  Graph g;
  g.add_input("x");
  g.add("d1", std::make_unique<Doubler>(), {"x"});
  g.add("d2", std::make_unique<Doubler>(), {"d1"});
  g.set_output("d2");
  NDArray x(Shape{2}, 1.0F);
  (void)g.forward({{"x", &x}}, true);
  NDArray seed1(Shape{2}, 1.0F);
  NDArray seed2(Shape{2}, 1.0F);
  g.backward_multi({{"d1", &seed1}, {"d2", &seed2}});
  EXPECT_FLOAT_EQ(g.input_grad("x")[0], 6.0F);
}

TEST(GraphTest, BackwardMultiSeedAccumulatesWithDownstreamGrad) {
  // Seeding an intermediate node that ALSO receives gradient from its
  // consumer (the pipeline-parallel skip-connection case).
  Graph g;
  g.add_input("x");
  g.add("a", std::make_unique<Doubler>(), {"x"});
  g.add("b", std::make_unique<Doubler>(), {"a"});
  g.set_output("b");
  NDArray x(Shape{1}, 1.0F);
  (void)g.forward({{"x", &x}}, true);
  NDArray seed_a(Shape{1}, 3.0F);   // boundary grad arriving at 'a'
  NDArray seed_b(Shape{1}, 1.0F);   // output grad
  g.backward_multi({{"a", &seed_a}, {"b", &seed_b}});
  // grad at a = 3 (seed) + 2 (from b) = 5; dL/dx = 2 * 5 = 10.
  EXPECT_FLOAT_EQ(g.input_grad("x")[0], 10.0F);
}

TEST(GraphTest, BackwardMultiRejectsBadSeeds) {
  Graph g;
  g.add_input("x");
  g.add("d", std::make_unique<Doubler>(), {"x"});
  g.set_output("d");
  NDArray x(Shape{2}, 1.0F);
  (void)g.forward({{"x", &x}}, true);
  EXPECT_THROW(g.backward_multi({}), InvalidArgument);
  NDArray wrong(Shape{3}, 1.0F);
  EXPECT_THROW(g.backward_multi({{"d", &wrong}}), InvalidArgument);
  EXPECT_THROW(g.backward_multi({{"d", nullptr}}), InvalidArgument);
  NDArray ok(Shape{2}, 1.0F);
  EXPECT_THROW(g.backward_multi({{"nope", &ok}}), InvalidArgument);
}

TEST(GraphTest, CheckpointParamsIncludeState) {
  Graph g;
  Rng rng(1);
  g.add_input("x");
  g.add("conv", std::make_unique<Conv3d>(1, 1, 1, 1, 0, rng), {"x"});
  g.add("bn", std::make_unique<nn::BatchNorm>(1), {"conv"});
  g.set_output("bn");
  const auto trainable = g.params();
  const auto checkpoint = g.checkpoint_params();
  EXPECT_EQ(trainable.size(), 4U);   // conv w/b + bn gamma/beta
  EXPECT_EQ(checkpoint.size(), 6U);  // + running mean/var
  bool has_running_mean = false;
  for (const auto& p : checkpoint) {
    has_running_mean |= p.name == "bn.running_mean";
  }
  EXPECT_TRUE(has_running_mean);
}

TEST(GraphTest, RejectsUnknownInput) {
  Graph g;
  g.add_input("x");
  EXPECT_THROW(g.add("d", std::make_unique<Doubler>(), {"nope"}),
               InvalidArgument);
}

TEST(GraphTest, RejectsDuplicateName) {
  Graph g;
  g.add_input("x");
  EXPECT_THROW(g.add_input("x"), InvalidArgument);
  g.add("d", std::make_unique<Doubler>(), {"x"});
  EXPECT_THROW(g.add("d", std::make_unique<Doubler>(), {"x"}),
               InvalidArgument);
}

TEST(GraphTest, RejectsArityMismatch) {
  Graph g;
  g.add_input("x");
  EXPECT_THROW(g.add("sum", std::make_unique<Adder>(), {"x"}),
               InvalidArgument);
}

TEST(GraphTest, MissingFeedThrows) {
  Graph g;
  g.add_input("x");
  g.add("d", std::make_unique<Doubler>(), {"x"});
  g.set_output("d");
  EXPECT_THROW(g.forward({}, true), InvalidArgument);
}

TEST(GraphTest, ParamsArePrefixed) {
  Graph g;
  Rng rng(1);
  g.add_input("x");
  g.add("conv", std::make_unique<Conv3d>(1, 1, 1, 1, 0, rng), {"x"});
  g.set_output("conv");
  const auto params = g.params();
  ASSERT_EQ(params.size(), 2U);
  EXPECT_EQ(params[0].name, "conv.weight");
  EXPECT_EQ(params[1].name, "conv.bias");
  EXPECT_EQ(g.num_params(), 2);
}

TEST(GraphTest, NodeOutputAccessible) {
  Graph g;
  g.add_input("x");
  g.add("d", std::make_unique<Doubler>(), {"x"});
  g.set_output("d");
  NDArray x(Shape{1}, 5.0F);
  (void)g.forward({{"x", &x}}, true);
  EXPECT_FLOAT_EQ(g.node_output("x")[0], 5.0F);
  EXPECT_FLOAT_EQ(g.node_output("d")[0], 10.0F);
}

TEST(GraphTest, GradReadyHookFiresOncePerParamInBackwardOrder) {
  Rng rng(3);
  Graph g;
  g.add_input("x");
  g.add("c1", std::make_unique<Conv3d>(1, 2, 1, 1, 0, rng), {"x"});
  g.add("c2", std::make_unique<Conv3d>(2, 1, 1, 1, 0, rng), {"c1"});
  g.set_output("c2");

  std::vector<std::string> ready;
  g.set_grad_ready_hook([&](const Param& p) {
    EXPECT_NE(p.value, nullptr);
    EXPECT_NE(p.grad, nullptr);
    EXPECT_EQ(p.value->shape(), p.grad->shape());
    ready.push_back(p.name);
  });

  NDArray x(Shape{1, 1, 2, 2, 2}, 1.0F);
  (void)g.forward({{"x", &x}}, true);
  NDArray go(Shape{1, 1, 2, 2, 2}, 1.0F);
  g.backward(go);

  // Reverse node order (c2 before c1), names matching Graph::params(),
  // each parameter exactly once.
  ASSERT_EQ(ready.size(), 4U);
  EXPECT_EQ(ready[0], "c2.weight");
  EXPECT_EQ(ready[1], "c2.bias");
  EXPECT_EQ(ready[2], "c1.weight");
  EXPECT_EQ(ready[3], "c1.bias");

  // A second pass fires again; removing the hook silences it.
  (void)g.forward({{"x", &x}}, true);
  g.backward(go);
  EXPECT_EQ(ready.size(), 8U);
  g.set_grad_ready_hook(nullptr);
  (void)g.forward({{"x", &x}}, true);
  g.backward(go);
  EXPECT_EQ(ready.size(), 8U);
}

}  // namespace
}  // namespace dmis::nn
