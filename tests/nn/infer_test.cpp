#include "nn/infer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

TEST(PadToDivisibleTest, AlreadyDivisibleIsIdentity) {
  NDArray x(Shape{1, 1, 8, 8, 8}, 3.0F);
  const NDArray padded = pad_to_divisible(x, 8);
  EXPECT_EQ(padded.shape(), x.shape());
  EXPECT_TRUE(padded.allclose(x, 0.0F));
}

TEST(PadToDivisibleTest, PadsToNextMultipleCentered) {
  NDArray x(Shape{1, 1, 5, 6, 7}, 1.0F);
  const NDArray padded = pad_to_divisible(x, 4);
  EXPECT_EQ(padded.shape(), (Shape{1, 1, 8, 8, 8}));
  // Content preserved: sum unchanged (zero padding).
  EXPECT_DOUBLE_EQ(padded.sum(), x.sum());
  // Depth pad (8-5)=3 -> 1 leading, 2 trailing: slice 0 all zero,
  // slice 1 contains data.
  EXPECT_FLOAT_EQ(padded[0], 0.0F);
  const int64_t slice1 = 1 * 8 * 8 + 1 * 8 + 0;  // (z=1, y=1, x=0)
  EXPECT_FLOAT_EQ(padded[slice1], 1.0F);
}

TEST(CropSpatialTest, InverseOfPad) {
  NDArray x(Shape{2, 3, 5, 6, 7});
  Rng rng(1);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  const NDArray padded = pad_to_divisible(x, 8);
  const NDArray back = crop_spatial(padded, 5, 6, 7);
  EXPECT_TRUE(back.allclose(x, 0.0F));
}

TEST(CropSpatialTest, RejectsUpscale) {
  NDArray x(Shape{1, 1, 4, 4, 4});
  EXPECT_THROW(crop_spatial(x, 5, 4, 4), InvalidArgument);
}

TEST(InferPaddedTest, ServesArbitraryGeometry) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 3;  // divisor 4
  UNet3d net(opts);

  // 5x6x7 is not divisible by 4; plain forward would throw.
  NDArray x(Shape{1, 1, 5, 6, 7});
  Rng rng(2);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  EXPECT_THROW(net.forward(x, false), InvalidArgument);

  const NDArray out = infer_padded(net, x);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 5, 6, 7}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0F);
    EXPECT_LE(out[i], 1.0F);
  }
}

TEST(InferPaddedTest, MatchesPlainForwardOnDivisibleInput) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 5;
  UNet3d net(opts);
  NDArray x(Shape{1, 1, 4, 4, 4});
  Rng rng(3);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  const NDArray via_infer = infer_padded(net, x);
  const NDArray direct = net.forward(x, false);
  EXPECT_TRUE(via_infer.allclose(direct, 1e-6F));
}

}  // namespace
}  // namespace dmis::nn
