#include "nn/infer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

TEST(PadToDivisibleTest, AlreadyDivisibleIsIdentity) {
  NDArray x(Shape{1, 1, 8, 8, 8}, 3.0F);
  const NDArray padded = pad_to_divisible(x, 8);
  EXPECT_EQ(padded.shape(), x.shape());
  EXPECT_TRUE(padded.allclose(x, 0.0F));
}

TEST(PadToDivisibleTest, PadsToNextMultipleCentered) {
  NDArray x(Shape{1, 1, 5, 6, 7}, 1.0F);
  const NDArray padded = pad_to_divisible(x, 4);
  EXPECT_EQ(padded.shape(), (Shape{1, 1, 8, 8, 8}));
  // Content preserved: sum unchanged (zero padding).
  EXPECT_DOUBLE_EQ(padded.sum(), x.sum());
  // Depth pad (8-5)=3 -> 1 leading, 2 trailing: slice 0 all zero,
  // slice 1 contains data.
  EXPECT_FLOAT_EQ(padded[0], 0.0F);
  const int64_t slice1 = 1 * 8 * 8 + 1 * 8 + 0;  // (z=1, y=1, x=0)
  EXPECT_FLOAT_EQ(padded[slice1], 1.0F);
}

TEST(CropSpatialTest, InverseOfPad) {
  NDArray x(Shape{2, 3, 5, 6, 7});
  Rng rng(1);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  const NDArray padded = pad_to_divisible(x, 8);
  const NDArray back = crop_spatial(padded, 5, 6, 7);
  EXPECT_TRUE(back.allclose(x, 0.0F));
}

TEST(CropSpatialTest, RejectsUpscale) {
  NDArray x(Shape{1, 1, 4, 4, 4});
  EXPECT_THROW(crop_spatial(x, 5, 4, 4), InvalidArgument);
}

TEST(InferPaddedTest, ServesArbitraryGeometry) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 3;  // divisor 4
  UNet3d net(opts);

  // 5x6x7 is not divisible by 4; plain forward would throw.
  NDArray x(Shape{1, 1, 5, 6, 7});
  Rng rng(2);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  EXPECT_THROW(net.forward(x, false), InvalidArgument);

  const NDArray out = infer_padded(net, x);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 5, 6, 7}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0F);
    EXPECT_LE(out[i], 1.0F);
  }
}

NDArray random_volume(const Shape& shape, uint64_t seed) {
  NDArray x(shape);
  Rng rng(seed);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  return x;
}

TEST(SlidingWindowTest, SingleTileMatchesFullVolumeBitwise) {
  UNet3dOptions opts;
  opts.in_channels = 2;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 7;
  UNet3d net(opts);
  const NDArray x = random_volume(Shape{1, 2, 6, 10, 12}, 11);

  SlidingWindowOptions sw;
  sw.patch_depth = 64;  // patch covers the whole (padded) volume
  sw.patch_height = 64;
  sw.patch_width = 64;
  const NDArray tiled = infer_sliding_window(net, x, sw);
  const NDArray full = infer_padded(net, x);
  ASSERT_EQ(tiled.shape(), full.shape());
  for (int64_t i = 0; i < tiled.numel(); ++i) {
    ASSERT_EQ(tiled[i], full[i]) << "voxel " << i;
  }
}

TEST(SlidingWindowTest, HaloTilesMatchFullVolumeWithinTolerance) {
  // With tile origins aligned to the pooling grid and a halo of real
  // context at least as large as the receptive-field radius, every
  // core prediction equals the full-volume one (shift equivariance at
  // stride multiples) — the parity the serving fallback relies on.
  UNet3dOptions opts;
  opts.in_channels = 4;
  opts.base_filters = 2;
  opts.depth = 2;  // divisor 2; receptive-field radius ~11 voxels
  opts.seed = 9;
  UNet3d net(opts);
  const NDArray x = random_volume(Shape{1, 4, 8, 28, 28}, 13);

  SlidingWindowOptions sw;
  sw.patch_depth = 8;
  sw.patch_height = 8;
  sw.patch_width = 8;
  sw.overlap = 0.0;
  sw.halo = 12;
  const NDArray tiled = infer_sliding_window(net, x, sw);
  const NDArray full = infer_padded(net, x);
  ASSERT_EQ(tiled.shape(), full.shape());
  float max_diff = 0.0F;
  for (int64_t i = 0; i < tiled.numel(); ++i) {
    max_diff = std::max(max_diff, std::abs(tiled[i] - full[i]));
  }
  EXPECT_LT(max_diff, 1e-5F);
}

TEST(SlidingWindowTest, GaussianBlendServesIndivisibleGeometry) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 3;  // divisor 4
  opts.seed = 4;
  UNet3d net(opts);
  const NDArray x = random_volume(Shape{1, 1, 9, 11, 13}, 17);

  SlidingWindowOptions sw;
  sw.patch_depth = 4;
  sw.patch_height = 8;
  sw.patch_width = 8;
  sw.overlap = 0.5;
  const NDArray out = infer_sliding_window(net, x, sw);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 9, 11, 13}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(out[i]));
    ASSERT_GE(out[i], 0.0F);
    ASSERT_LE(out[i], 1.0F);
  }
  // Deterministic: a second pass reproduces the first bitwise.
  const NDArray again = infer_sliding_window(net, x, sw);
  for (int64_t i = 0; i < out.numel(); ++i) {
    ASSERT_EQ(out[i], again[i]);
  }
}

TEST(SlidingWindowTest, TileHookRunsPerTileAndCanAbort) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  UNet3d net(opts);
  const NDArray x = random_volume(Shape{1, 1, 8, 8, 16}, 3);

  SlidingWindowOptions sw;
  sw.patch_depth = 8;
  sw.patch_height = 8;
  sw.patch_width = 8;
  int tiles = 0;
  sw.tile_hook = [&tiles] { ++tiles; };
  (void)infer_sliding_window(net, x, sw);
  EXPECT_EQ(tiles, 2);

  sw.tile_hook = [&tiles] {
    if (++tiles >= 2) throw IoError("abandon");
  };
  tiles = 0;
  EXPECT_THROW(infer_sliding_window(net, x, sw), IoError);
}

TEST(SlidingWindowTest, RejectsBadGeometryAndOptions) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  UNet3d net(opts);
  const NDArray batch2 = random_volume(Shape{2, 1, 8, 8, 8}, 5);
  EXPECT_THROW(infer_sliding_window(net, batch2, {}), InvalidArgument);

  const NDArray x = random_volume(Shape{1, 1, 8, 8, 8}, 5);
  SlidingWindowOptions bad;
  bad.overlap = 1.0;
  EXPECT_THROW(infer_sliding_window(net, x, bad), InvalidArgument);
  bad = {};
  bad.patch_depth = 0;
  EXPECT_THROW(infer_sliding_window(net, x, bad), InvalidArgument);
  bad = {};
  bad.halo = -1;
  EXPECT_THROW(infer_sliding_window(net, x, bad), InvalidArgument);
}

TEST(InferPaddedTest, MatchesPlainForwardOnDivisibleInput) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 5;
  UNet3d net(opts);
  NDArray x(Shape{1, 1, 4, 4, 4});
  Rng rng(3);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  const NDArray via_infer = infer_padded(net, x);
  const NDArray direct = net.forward(x, false);
  EXPECT_TRUE(via_infer.allclose(direct, 1e-6F));
}

}  // namespace
}  // namespace dmis::nn
