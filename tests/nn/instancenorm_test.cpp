#include "nn/layers/instancenorm.hpp"

#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/unet3d.hpp"

namespace dmis::nn {
namespace {

TEST(InstanceNormTest, NormalizesPerSamplePerChannel) {
  InstanceNorm in_norm(2);
  Rng rng(3);
  NDArray x(Shape{3, 2, 2, 2, 2});
  testing::fill_uniform(x, rng, -5.0F, 9.0F);
  const NDArray y = in_norm.forward1(x, true);

  const int64_t spatial = 8;
  for (int64_t n = 0; n < 3; ++n) {
    for (int64_t c = 0; c < 2; ++c) {
      double sum = 0.0, sq = 0.0;
      const float* yc = y.data() + (n * 2 + c) * spatial;
      for (int64_t i = 0; i < spatial; ++i) {
        sum += yc[i];
        sq += static_cast<double>(yc[i]) * yc[i];
      }
      EXPECT_NEAR(sum / spatial, 0.0, 1e-4);
      EXPECT_NEAR(sq / spatial, 1.0, 2e-2);
    }
  }
}

TEST(InstanceNormTest, TrainEvalIdentical) {
  // No batch statistics -> mode must not matter.
  InstanceNorm a(3);
  InstanceNorm b(3);
  Rng rng(5);
  NDArray x(Shape{2, 3, 2, 2, 2});
  testing::fill_uniform(x, rng, -1.0F, 1.0F);
  const NDArray train = a.forward1(x, true);
  const NDArray eval = b.forward1(x, false);
  EXPECT_TRUE(train.allclose(eval, 0.0F));
}

TEST(InstanceNormTest, BatchIndependence) {
  // Each sample normalizes on its own: sample 0's output must not
  // change when sample 1's content changes.
  InstanceNorm norm(1);
  NDArray x(Shape{2, 1, 2, 2, 2});
  Rng rng(7);
  testing::fill_uniform(x, rng, -1.0F, 1.0F);
  const NDArray y1 = norm.forward1(x, true);
  for (int64_t i = 8; i < 16; ++i) x[i] += 100.0F;  // perturb sample 1 only
  const NDArray y2 = norm.forward1(x, true);
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(InstanceNormTest, GradCheck) {
  InstanceNorm norm(2);
  testing::GradCheckOptions opts;
  opts.tol = 3e-2F;
  testing::expect_gradients_match(norm, {Shape{2, 2, 2, 2, 2}}, opts);
}

TEST(InstanceNormTest, RejectsBadInputs) {
  EXPECT_THROW(InstanceNorm(0), InvalidArgument);
  InstanceNorm norm(2);
  NDArray wrong(Shape{1, 3, 2, 2, 2});
  EXPECT_THROW(norm.forward1(wrong, true), InvalidArgument);
  NDArray scalar_spatial(Shape{1, 2, 1});  // 1 spatial element
  EXPECT_THROW(norm.forward1(scalar_spatial, true), InvalidArgument);
}

TEST(UNet3dNormTest, InstanceNormVariantBuildsAndTrains) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.norm = NormKind::kInstance;
  UNet3d net(opts);
  NDArray x(Shape{1, 1, 4, 4, 4});
  Rng rng(1);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  const NDArray& out = net.forward(x, true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 4, 4, 4}));
  // Same parameter count as the batch-norm variant (gamma/beta each).
  UNet3dOptions bn_opts = opts;
  bn_opts.norm = NormKind::kBatch;
  UNet3d bn_net(bn_opts);
  EXPECT_EQ(net.num_params(), bn_net.num_params());
}

TEST(UNet3dNormTest, LegacyFlagForcesNoNorm) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.batch_norm = false;
  opts.norm = NormKind::kInstance;  // overridden by the legacy flag
  EXPECT_EQ(opts.effective_norm(), NormKind::kNone);
  UNet3d none_net(opts);
  opts.batch_norm = true;
  UNet3d in_net(opts);
  EXPECT_LT(none_net.num_params(), in_net.num_params());
}

}  // namespace
}  // namespace dmis::nn
