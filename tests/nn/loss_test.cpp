#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

// Central-difference check of a loss gradient.
void check_loss_grad(const Loss& loss, const NDArray& pred,
                     const NDArray& target, float eps = 1e-3F,
                     float tol = 1e-3F) {
  const LossResult res = loss.compute(pred, target);
  NDArray p = pred;
  for (int64_t i = 0; i < p.numel(); ++i) {
    const float saved = p[i];
    p[i] = saved + eps;
    const double up = loss.compute(p, target).value;
    p[i] = saved - eps;
    const double dn = loss.compute(p, target).value;
    p[i] = saved;
    const double numeric = (up - dn) / (2.0 * eps);
    EXPECT_NEAR(res.grad[i], numeric, tol) << "element " << i;
  }
}

NDArray random_probs(const Shape& s, uint64_t seed) {
  NDArray t(s);
  Rng rng(seed);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(0.05, 0.95));
  }
  return t;
}

NDArray random_mask(const Shape& s, uint64_t seed) {
  NDArray t(s);
  Rng rng(seed);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.uniform() < 0.4 ? 1.0F : 0.0F;
  }
  return t;
}

TEST(SoftDiceLossTest, PerfectMatchIsNearZero) {
  SoftDiceLoss loss;
  NDArray mask = random_mask(Shape{2, 1, 2, 2, 2}, 1);
  const LossResult res = loss.compute(mask, mask);
  EXPECT_LT(res.value, 0.01);
}

TEST(SoftDiceLossTest, CompleteMismatchIsNearOne) {
  SoftDiceLoss loss;
  NDArray pred(Shape{1, 1, 2, 2, 2}, 1.0F);
  NDArray target(Shape{1, 1, 2, 2, 2}, 0.0F);
  const LossResult res = loss.compute(pred, target);
  EXPECT_GT(res.value, 0.95);
}

TEST(SoftDiceLossTest, EmptyBothMasksHandledByEpsilon) {
  SoftDiceLoss loss;
  NDArray zero(Shape{1, 1, 2, 2, 2}, 0.0F);
  const LossResult res = loss.compute(zero, zero);
  EXPECT_NEAR(res.value, 0.0, 1e-6);  // eps/eps = 1 -> loss 0
}

TEST(SoftDiceLossTest, GradientMatchesNumeric) {
  SoftDiceLoss loss;
  const Shape s{2, 1, 2, 2, 2};
  check_loss_grad(loss, random_probs(s, 3), random_mask(s, 4));
}

TEST(SoftDiceLossTest, LossDecreasesAlongNegativeGradient) {
  SoftDiceLoss loss;
  const Shape s{1, 1, 2, 2, 2};
  NDArray pred = random_probs(s, 5);
  NDArray target = random_mask(s, 6);
  const LossResult res = loss.compute(pred, target);
  NDArray stepped = pred;
  stepped.axpy_(-0.05F, res.grad);
  EXPECT_LT(loss.compute(stepped, target).value, res.value);
}

TEST(QuadraticSoftDiceLossTest, PerfectBinaryMatchIsNearZero) {
  QuadraticSoftDiceLoss loss;
  NDArray mask = random_mask(Shape{1, 1, 2, 2, 2}, 7);
  EXPECT_LT(loss.compute(mask, mask).value, 0.01);
}

TEST(QuadraticSoftDiceLossTest, GradientMatchesNumeric) {
  QuadraticSoftDiceLoss loss;
  const Shape s{2, 1, 2, 2, 2};
  check_loss_grad(loss, random_probs(s, 8), random_mask(s, 9));
}

TEST(QuadraticSoftDiceLossTest, DiffersFromLinearVariant) {
  const Shape s{1, 1, 2, 2, 2};
  NDArray pred = random_probs(s, 10);
  NDArray target = random_mask(s, 11);
  const double lin = SoftDiceLoss().compute(pred, target).value;
  const double quad = QuadraticSoftDiceLoss().compute(pred, target).value;
  EXPECT_NE(lin, quad);
}

TEST(BceLossTest, ConfidentCorrectIsSmall) {
  BceLoss loss;
  NDArray pred(Shape{1, 4}, std::vector<float>{0.99F, 0.01F, 0.99F, 0.01F});
  NDArray target(Shape{1, 4}, std::vector<float>{1.0F, 0.0F, 1.0F, 0.0F});
  EXPECT_LT(loss.compute(pred, target).value, 0.02);
}

TEST(BceLossTest, GradientMatchesNumeric) {
  BceLoss loss;
  const Shape s{2, 1, 2, 2, 2};
  check_loss_grad(loss, random_probs(s, 12), random_mask(s, 13), 1e-3F,
                  2e-3F);
}

TEST(BceLossTest, ClampsExtremeProbabilities) {
  BceLoss loss;
  NDArray pred(Shape{1, 2}, std::vector<float>{0.0F, 1.0F});
  NDArray target(Shape{1, 2}, std::vector<float>{1.0F, 0.0F});
  const LossResult res = loss.compute(pred, target);
  EXPECT_TRUE(std::isfinite(res.value));
  EXPECT_TRUE(std::isfinite(res.grad[0]));
}

TEST(LossFactoryTest, CreatesByNameAndRejectsUnknown) {
  EXPECT_EQ(make_loss("dice")->name(), "dice");
  EXPECT_EQ(make_loss("qdice")->name(), "qdice");
  EXPECT_EQ(make_loss("bce")->name(), "bce");
  EXPECT_THROW(make_loss("focal"), InvalidArgument);
}

TEST(LossTest, ShapeMismatchThrows) {
  SoftDiceLoss loss;
  NDArray a(Shape{1, 2});
  NDArray b(Shape{2, 1});
  EXPECT_THROW(loss.compute(a, b), InvalidArgument);
}

}  // namespace
}  // namespace dmis::nn
