#include "nn/lr_schedule.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dmis::nn {
namespace {

TEST(ConstantLrTest, AlwaysSame) {
  ConstantLr lr(1e-4);
  EXPECT_DOUBLE_EQ(lr.lr(0), 1e-4);
  EXPECT_DOUBLE_EQ(lr.lr(100000), 1e-4);
  EXPECT_THROW(ConstantLr(0.0), InvalidArgument);
}

TEST(CyclicLrTest, TriangularWave) {
  CyclicLr lr(0.001, 0.006, 100);
  EXPECT_DOUBLE_EQ(lr.lr(0), 0.001);       // cycle start: base
  EXPECT_DOUBLE_EQ(lr.lr(100), 0.006);     // peak at step_size
  EXPECT_DOUBLE_EQ(lr.lr(200), 0.001);     // back to base
  EXPECT_DOUBLE_EQ(lr.lr(50), 0.0035);     // halfway up
  EXPECT_DOUBLE_EQ(lr.lr(150), 0.0035);    // halfway down
  EXPECT_DOUBLE_EQ(lr.lr(300), 0.006);     // second cycle peak
}

TEST(CyclicLrTest, StaysWithinBand) {
  CyclicLr lr(1e-4, 1e-3, 37);
  for (int64_t s = 0; s < 1000; ++s) {
    EXPECT_GE(lr.lr(s), 1e-4);
    EXPECT_LE(lr.lr(s), 1e-3);
  }
}

TEST(CyclicLrTest, RejectsBadBand) {
  EXPECT_THROW(CyclicLr(1e-3, 1e-4, 10), InvalidArgument);
  EXPECT_THROW(CyclicLr(1e-4, 1e-3, 0), InvalidArgument);
}

TEST(WarmupLrTest, RampsLinearlyThenFlat) {
  WarmupLr lr(1e-4, 8e-4, 100);
  EXPECT_DOUBLE_EQ(lr.lr(0), 1e-4);
  EXPECT_NEAR(lr.lr(50), (1e-4 + 8e-4) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(lr.lr(100), 8e-4);
  EXPECT_DOUBLE_EQ(lr.lr(100000), 8e-4);
}

TEST(WarmupLrTest, ZeroWarmupIsTargetImmediately) {
  WarmupLr lr(1e-4, 8e-4, 0);
  EXPECT_DOUBLE_EQ(lr.lr(0), 8e-4);
}

TEST(StepDecayLrTest, DecaysByGammaEveryInterval) {
  StepDecayLr lr(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(lr.lr(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(9), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(10), 0.5);
  EXPECT_DOUBLE_EQ(lr.lr(25), 0.25);
}

TEST(LrScheduleTest, NegativeStepThrows) {
  CyclicLr lr(1e-4, 1e-3, 10);
  EXPECT_THROW(lr.lr(-1), InvalidArgument);
}

}  // namespace
}  // namespace dmis::nn
