#include "nn/layers/maxpool3d.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gradcheck.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

TEST(MaxPool3dTest, HalvesSpatialExtent) {
  MaxPool3d pool(2, 2);
  NDArray in(Shape{2, 3, 8, 6, 4});
  const NDArray out = pool.forward1(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 3, 4, 3, 2}));
}

TEST(MaxPool3dTest, PicksWindowMaximum) {
  MaxPool3d pool(2, 2);
  NDArray in(Shape{1, 1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) in[i] = static_cast<float>(i);
  in[3] = 42.0F;
  const NDArray out = pool.forward1(in, true);
  ASSERT_EQ(out.numel(), 1);
  EXPECT_FLOAT_EQ(out[0], 42.0F);
}

TEST(MaxPool3dTest, NegativeInputsHandled) {
  MaxPool3d pool(2, 2);
  NDArray in(Shape{1, 1, 2, 2, 2}, -5.0F);
  in[6] = -1.0F;
  const NDArray out = pool.forward1(in, true);
  EXPECT_FLOAT_EQ(out[0], -1.0F);
}

TEST(MaxPool3dTest, BackwardRoutesGradientToArgmaxOnly) {
  MaxPool3d pool(2, 2);
  NDArray in(Shape{1, 1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) in[i] = static_cast<float>(i);
  (void)pool.forward1(in, true);
  NDArray go(Shape{1, 1, 1, 1, 1});
  go[0] = 3.0F;
  const auto grads = pool.backward(go);
  ASSERT_EQ(grads.size(), 1U);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(grads[0][i], i == 7 ? 3.0F : 0.0F);
  }
}

TEST(MaxPool3dTest, GradCheckWithTieFreeInput) {
  MaxPool3d pool(2, 2);
  // Well-separated values so the eps-perturbation never flips the argmax.
  NDArray in(Shape{1, 2, 4, 4, 4});
  std::vector<int> order(static_cast<size_t>(in.numel()));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(17);
  shuffle(order.begin(), order.end(), rng);
  for (int64_t i = 0; i < in.numel(); ++i) {
    in[i] = 0.1F * static_cast<float>(order[static_cast<size_t>(i)]);
  }
  std::vector<NDArray> inputs;
  inputs.push_back(std::move(in));
  testing::GradCheckOptions opts;
  opts.eps = 1e-3F;
  testing::expect_gradients_match_on(pool, std::move(inputs), opts);
}

TEST(MaxPool3dTest, RaggedExtentDropsRemainder) {
  MaxPool3d pool(2, 2);
  NDArray in(Shape{1, 1, 5, 5, 5}, 1.0F);
  const NDArray out = pool.forward1(in, true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2, 2}));
}

}  // namespace
}  // namespace dmis::nn
