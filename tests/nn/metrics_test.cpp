#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace dmis::nn {
namespace {

TEST(MetricsTest, ConfusionCountsAllQuadrants) {
  NDArray pred(Shape{4}, std::vector<float>{0.9F, 0.9F, 0.1F, 0.1F});
  NDArray target(Shape{4}, std::vector<float>{1.0F, 0.0F, 1.0F, 0.0F});
  const ConfusionCounts c = confusion(pred, target);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(MetricsTest, PerfectDice) {
  NDArray mask(Shape{8}, std::vector<float>{1, 0, 1, 0, 1, 1, 0, 0});
  EXPECT_DOUBLE_EQ(dice_score(mask, mask), 1.0);
  EXPECT_DOUBLE_EQ(iou_score(mask, mask), 1.0);
}

TEST(MetricsTest, DisjointMasksScoreZero) {
  NDArray pred(Shape{4}, std::vector<float>{1, 1, 0, 0});
  NDArray target(Shape{4}, std::vector<float>{0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(dice_score(pred, target), 0.0);
  EXPECT_DOUBLE_EQ(iou_score(pred, target), 0.0);
}

TEST(MetricsTest, KnownPartialOverlap) {
  // pred {a,b}, target {b,c}: dice = 2*1/(2+2) = 0.5, iou = 1/3.
  NDArray pred(Shape{3}, std::vector<float>{1, 1, 0});
  NDArray target(Shape{3}, std::vector<float>{0, 1, 1});
  EXPECT_DOUBLE_EQ(dice_score(pred, target), 0.5);
  EXPECT_NEAR(iou_score(pred, target), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(precision(pred, target), 0.5);
  EXPECT_DOUBLE_EQ(recall(pred, target), 0.5);
}

TEST(MetricsTest, EmptyMasksConventions) {
  NDArray zero(Shape{4}, 0.0F);
  EXPECT_DOUBLE_EQ(dice_score(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(iou_score(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(precision(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(recall(zero, zero), 1.0);
}

TEST(MetricsTest, ThresholdApplied) {
  NDArray pred(Shape{2}, std::vector<float>{0.4F, 0.6F});
  NDArray target(Shape{2}, std::vector<float>{1.0F, 1.0F});
  EXPECT_DOUBLE_EQ(recall(pred, target, 0.5F), 0.5);
  EXPECT_DOUBLE_EQ(recall(pred, target, 0.3F), 1.0);
}

TEST(MetricsTest, DiceIsF1OfPrecisionRecall) {
  NDArray pred(Shape{6}, std::vector<float>{1, 1, 1, 0, 0, 0});
  NDArray target(Shape{6}, std::vector<float>{1, 0, 1, 1, 0, 0});
  const double p = precision(pred, target);
  const double r = recall(pred, target);
  EXPECT_NEAR(dice_score(pred, target), 2.0 * p * r / (p + r), 1e-12);
}

TEST(MetricsTest, ShapeMismatchThrows) {
  NDArray a(Shape{2});
  NDArray b(Shape{3});
  EXPECT_THROW(confusion(a, b), InvalidArgument);
}

}  // namespace
}  // namespace dmis::nn
