#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dmis::nn {
namespace {

// A single scalar "parameter" with its gradient for closed-form checks.
struct ScalarParam {
  NDArray w{Shape{1}};
  NDArray g{Shape{1}};
  std::vector<Param> params() { return {{"w", &w, &g}}; }
};

TEST(SgdTest, VanillaStepIsLrTimesGrad) {
  ScalarParam p;
  p.w[0] = 1.0F;
  Sgd opt(p.params(), 0.1, 0.0);
  p.g[0] = 2.0F;
  opt.step();
  EXPECT_NEAR(p.w[0], 1.0F - 0.1F * 2.0F, 1e-6F);
}

TEST(SgdTest, MomentumAccumulates) {
  ScalarParam p;
  Sgd opt(p.params(), 0.1, 0.5);
  p.g[0] = 1.0F;
  opt.step();  // v = 1, w = -0.1
  opt.step();  // v = 1.5, w = -0.25
  EXPECT_NEAR(p.w[0], -0.25F, 1e-6F);
}

TEST(SgdTest, MinimizesQuadratic) {
  ScalarParam p;
  p.w[0] = 5.0F;
  Sgd opt(p.params(), 0.1, 0.9);
  for (int i = 0; i < 200; ++i) {
    p.g[0] = 2.0F * p.w[0];  // d/dw of w^2
    opt.step();
  }
  EXPECT_NEAR(p.w[0], 0.0F, 1e-3F);
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // With bias correction, |first update| ~= lr regardless of grad scale.
  ScalarParam p;
  Adam opt(p.params(), 0.01);
  p.g[0] = 1234.0F;
  opt.step();
  EXPECT_NEAR(p.w[0], -0.01F, 1e-4F);
}

TEST(AdamTest, MinimizesQuadratic) {
  ScalarParam p;
  p.w[0] = 3.0F;
  Adam opt(p.params(), 0.05);
  for (int i = 0; i < 500; ++i) {
    p.g[0] = 2.0F * p.w[0];
    opt.step();
  }
  EXPECT_NEAR(p.w[0], 0.0F, 1e-2F);
}

TEST(AdamTest, MinimizesRosenbrockish2d) {
  // f(x, y) = (1-x)^2 + 10 (y - x^2)^2 — a curved valley.
  NDArray w(Shape{2});
  NDArray g(Shape{2});
  w[0] = -1.0F;
  w[1] = 1.0F;
  std::vector<Param> params{{"w", &w, &g}};
  Adam opt(params, 0.02);
  for (int i = 0; i < 4000; ++i) {
    const float x = w[0], y = w[1];
    g[0] = -2.0F * (1.0F - x) - 40.0F * x * (y - x * x);
    g[1] = 20.0F * (y - x * x);
    opt.step();
  }
  EXPECT_NEAR(w[0], 1.0F, 0.05F);
  EXPECT_NEAR(w[1], 1.0F, 0.1F);
}

TEST(OptimizerTest, ZeroGradClears) {
  ScalarParam p;
  Sgd opt(p.params(), 0.1);
  p.g[0] = 7.0F;
  opt.zero_grad();
  EXPECT_EQ(p.g[0], 0.0F);
}

TEST(OptimizerTest, SetLrTakesEffect) {
  ScalarParam p;
  Sgd opt(p.params(), 0.1, 0.0);
  opt.set_lr(1.0);
  p.g[0] = 1.0F;
  opt.step();
  EXPECT_NEAR(p.w[0], -1.0F, 1e-6F);
}

TEST(OptimizerTest, RejectsBadConfigs) {
  ScalarParam p;
  EXPECT_THROW(Sgd(p.params(), -0.1), InvalidArgument);
  EXPECT_THROW(Sgd(p.params(), 0.1, 1.5), InvalidArgument);
  EXPECT_THROW(Adam(p.params(), 0.0), InvalidArgument);
}

TEST(OptimizerFactoryTest, ByName) {
  ScalarParam p;
  EXPECT_EQ(make_optimizer("adam", p.params(), 0.1)->name(), "adam");
  EXPECT_EQ(make_optimizer("sgd", p.params(), 0.1)->name(), "sgd");
  EXPECT_THROW(make_optimizer("rmsprop", p.params(), 0.1), InvalidArgument);
}

TEST(OptimizerTest, StepCountAdvances) {
  ScalarParam p;
  Adam opt(p.params(), 0.1);
  EXPECT_EQ(opt.step_count(), 0);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.step_count(), 2);
}

TEST(OptimizerTest, StateParamsExposeNamedSlotState) {
  ScalarParam p;
  Adam adam(p.params(), 0.1);
  const auto adam_state = adam.state_params();
  ASSERT_EQ(adam_state.size(), 2U);  // m and v per parameter
  EXPECT_EQ(adam_state[0].name, "opt.m.w");
  EXPECT_EQ(adam_state[1].name, "opt.v.w");

  ScalarParam q;
  Sgd sgd(q.params(), 0.1, 0.5);
  const auto sgd_state = sgd.state_params();
  ASSERT_EQ(sgd_state.size(), 1U);
  EXPECT_EQ(sgd_state[0].name, "opt.velocity.w");
}

// The checkpoint-resume contract: copying weights + slot state +
// step_count into a fresh optimizer must continue *exactly* where the
// original left off — Adam's bias correction depends on step_count, so
// a missed counter would silently skew the resumed trajectory.
TEST(OptimizerTest, AdamStateRoundTripResumesExactly) {
  ScalarParam a;
  a.w[0] = 2.0F;
  Adam original(a.params(), 0.05);
  const auto grad_at = [](float w) { return 2.0F * w; };  // d/dw of w^2
  for (int i = 0; i < 3; ++i) {
    a.g[0] = grad_at(a.w[0]);
    original.step();
  }

  // "Restore" into a fresh optimizer: weights, m/v slots, step count.
  ScalarParam b;
  b.w[0] = a.w[0];
  Adam resumed(b.params(), 0.05);
  const auto src = original.state_params();
  const auto dst = resumed.state_params();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    for (int64_t k = 0; k < src[i].value->numel(); ++k) {
      (*dst[i].value)[k] = (*src[i].value)[k];
    }
  }
  resumed.set_step_count(original.step_count());

  for (int i = 0; i < 5; ++i) {
    a.g[0] = grad_at(a.w[0]);
    original.step();
    b.g[0] = grad_at(b.w[0]);
    resumed.step();
    ASSERT_EQ(a.w[0], b.w[0]) << "diverged at resumed step " << i;
  }

  // Without the step counter the bias correction differs immediately.
  ScalarParam c;
  c.w[0] = a.w[0];
  Adam wrong(c.params(), 0.05);
  c.g[0] = grad_at(c.w[0]);
  a.g[0] = grad_at(a.w[0]);
  original.step();
  wrong.step();  // step_count 1 vs the original's 9
  EXPECT_NE(a.w[0], c.w[0]);
}

TEST(OptimizerTest, SgdVelocityRoundTripResumesExactly) {
  ScalarParam a;
  a.w[0] = 4.0F;
  Sgd original(a.params(), 0.1, 0.9);
  for (int i = 0; i < 3; ++i) {
    a.g[0] = 2.0F * a.w[0];
    original.step();
  }

  ScalarParam b;
  b.w[0] = a.w[0];
  Sgd resumed(b.params(), 0.1, 0.9);
  const auto src = original.state_params();
  const auto dst = resumed.state_params();
  ASSERT_EQ(src.size(), dst.size());
  (*dst[0].value)[0] = (*src[0].value)[0];
  resumed.set_step_count(original.step_count());

  for (int i = 0; i < 5; ++i) {
    a.g[0] = 2.0F * a.w[0];
    original.step();
    b.g[0] = 2.0F * b.w[0];
    resumed.step();
    ASSERT_EQ(a.w[0], b.w[0]) << "diverged at resumed step " << i;
  }
}

}  // namespace
}  // namespace dmis::nn
