#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dmis::nn {
namespace {

// A single scalar "parameter" with its gradient for closed-form checks.
struct ScalarParam {
  NDArray w{Shape{1}};
  NDArray g{Shape{1}};
  std::vector<Param> params() { return {{"w", &w, &g}}; }
};

TEST(SgdTest, VanillaStepIsLrTimesGrad) {
  ScalarParam p;
  p.w[0] = 1.0F;
  Sgd opt(p.params(), 0.1, 0.0);
  p.g[0] = 2.0F;
  opt.step();
  EXPECT_NEAR(p.w[0], 1.0F - 0.1F * 2.0F, 1e-6F);
}

TEST(SgdTest, MomentumAccumulates) {
  ScalarParam p;
  Sgd opt(p.params(), 0.1, 0.5);
  p.g[0] = 1.0F;
  opt.step();  // v = 1, w = -0.1
  opt.step();  // v = 1.5, w = -0.25
  EXPECT_NEAR(p.w[0], -0.25F, 1e-6F);
}

TEST(SgdTest, MinimizesQuadratic) {
  ScalarParam p;
  p.w[0] = 5.0F;
  Sgd opt(p.params(), 0.1, 0.9);
  for (int i = 0; i < 200; ++i) {
    p.g[0] = 2.0F * p.w[0];  // d/dw of w^2
    opt.step();
  }
  EXPECT_NEAR(p.w[0], 0.0F, 1e-3F);
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // With bias correction, |first update| ~= lr regardless of grad scale.
  ScalarParam p;
  Adam opt(p.params(), 0.01);
  p.g[0] = 1234.0F;
  opt.step();
  EXPECT_NEAR(p.w[0], -0.01F, 1e-4F);
}

TEST(AdamTest, MinimizesQuadratic) {
  ScalarParam p;
  p.w[0] = 3.0F;
  Adam opt(p.params(), 0.05);
  for (int i = 0; i < 500; ++i) {
    p.g[0] = 2.0F * p.w[0];
    opt.step();
  }
  EXPECT_NEAR(p.w[0], 0.0F, 1e-2F);
}

TEST(AdamTest, MinimizesRosenbrockish2d) {
  // f(x, y) = (1-x)^2 + 10 (y - x^2)^2 — a curved valley.
  NDArray w(Shape{2});
  NDArray g(Shape{2});
  w[0] = -1.0F;
  w[1] = 1.0F;
  std::vector<Param> params{{"w", &w, &g}};
  Adam opt(params, 0.02);
  for (int i = 0; i < 4000; ++i) {
    const float x = w[0], y = w[1];
    g[0] = -2.0F * (1.0F - x) - 40.0F * x * (y - x * x);
    g[1] = 20.0F * (y - x * x);
    opt.step();
  }
  EXPECT_NEAR(w[0], 1.0F, 0.05F);
  EXPECT_NEAR(w[1], 1.0F, 0.1F);
}

TEST(OptimizerTest, ZeroGradClears) {
  ScalarParam p;
  Sgd opt(p.params(), 0.1);
  p.g[0] = 7.0F;
  opt.zero_grad();
  EXPECT_EQ(p.g[0], 0.0F);
}

TEST(OptimizerTest, SetLrTakesEffect) {
  ScalarParam p;
  Sgd opt(p.params(), 0.1, 0.0);
  opt.set_lr(1.0);
  p.g[0] = 1.0F;
  opt.step();
  EXPECT_NEAR(p.w[0], -1.0F, 1e-6F);
}

TEST(OptimizerTest, RejectsBadConfigs) {
  ScalarParam p;
  EXPECT_THROW(Sgd(p.params(), -0.1), InvalidArgument);
  EXPECT_THROW(Sgd(p.params(), 0.1, 1.5), InvalidArgument);
  EXPECT_THROW(Adam(p.params(), 0.0), InvalidArgument);
}

TEST(OptimizerFactoryTest, ByName) {
  ScalarParam p;
  EXPECT_EQ(make_optimizer("adam", p.params(), 0.1)->name(), "adam");
  EXPECT_EQ(make_optimizer("sgd", p.params(), 0.1)->name(), "sgd");
  EXPECT_THROW(make_optimizer("rmsprop", p.params(), 0.1), InvalidArgument);
}

TEST(OptimizerTest, StepCountAdvances) {
  ScalarParam p;
  Adam opt(p.params(), 0.1);
  EXPECT_EQ(opt.step_count(), 0);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.step_count(), 2);
}

}  // namespace
}  // namespace dmis::nn
