#include "nn/pipelined_unet3d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

UNet3dOptions tiny(bool batch_norm = false, uint64_t seed = 21) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 3;  // two skips cross the stage cut
  opts.seed = seed;
  opts.batch_norm = batch_norm;
  return opts;
}

NDArray random_batch(int64_t n, uint64_t seed) {
  NDArray x(Shape{n, 1, 4, 4, 4});
  Rng rng(seed);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  return x;
}

TEST(PipelinedUNet3dTest, SameParameterCountAsMonolithic) {
  UNet3d mono(tiny());
  PipelinedUNet3d piped(tiny(), 2);
  EXPECT_EQ(piped.num_params(), mono.num_params());
}

TEST(PipelinedUNet3dTest, InitializationMatchesMonolithic) {
  // Same seed, same RNG consumption order -> identical weights, so the
  // untrained forward passes must agree exactly.
  UNet3d mono(tiny());
  PipelinedUNet3d piped(tiny(), 2);
  const NDArray x = random_batch(4, 3);
  const NDArray mono_out = mono.forward(x, false);
  const NDArray piped_out = piped.forward(x, false);
  EXPECT_TRUE(piped_out.allclose(mono_out, 1e-6F));
}

TEST(PipelinedUNet3dTest, MicrobatchCountInvariance) {
  // The stitched forward must not depend on how the batch is split
  // (batch norm off: no cross-sample coupling).
  const NDArray x = random_batch(6, 5);
  PipelinedUNet3d one(tiny(), 1);
  PipelinedUNet3d three(tiny(), 3);
  const NDArray a = one.forward(x, true);
  const NDArray b = three.forward(x, true);
  EXPECT_TRUE(a.allclose(b, 1e-6F));
}

TEST(PipelinedUNet3dTest, GradientsMatchMonolithic) {
  // One training step: pipelined gradients (accumulated over
  // microbatches with recomputation) must equal the monolithic ones.
  UNet3d mono(tiny());
  PipelinedUNet3d piped(tiny(), 2);
  const NDArray x = random_batch(4, 7);
  NDArray target(Shape{4, 1, 4, 4, 4});
  Rng rng(9);
  for (int64_t i = 0; i < target.numel(); ++i) {
    target[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
  }
  SoftDiceLoss loss;

  for (Param& p : mono.params()) p.grad->zero();
  const NDArray mono_pred = mono.forward(x, true);
  mono.backward(loss.compute(mono_pred, target).grad);

  for (Param& p : piped.params()) p.grad->zero();
  const NDArray piped_pred = piped.forward(x, true);
  piped.backward(loss.compute(piped_pred, target).grad);

  const auto mono_params = mono.params();
  const auto piped_params = piped.params();
  ASSERT_EQ(mono_params.size(), piped_params.size());
  for (size_t i = 0; i < mono_params.size(); ++i) {
    ASSERT_EQ(mono_params[i].grad->numel(), piped_params[i].grad->numel());
    for (int64_t j = 0; j < mono_params[i].grad->numel(); ++j) {
      ASSERT_NEAR((*mono_params[i].grad)[j], (*piped_params[i].grad)[j],
                  5e-5F)
          << mono_params[i].name << " vs " << piped_params[i].name
          << " element " << j;
    }
  }
}

TEST(PipelinedUNet3dTest, TrainingStepEquivalence) {
  // Three full Adam steps: pipelined and monolithic training must stay
  // numerically aligned (batch norm off).
  UNet3d mono(tiny());
  PipelinedUNet3d piped(tiny(), 2);
  SoftDiceLoss loss;
  Adam mono_opt(mono.params(), 1e-3);
  Adam piped_opt(piped.params(), 1e-3);

  for (int step = 0; step < 3; ++step) {
    const NDArray x = random_batch(4, 11 + static_cast<uint64_t>(step));
    NDArray target(Shape{4, 1, 4, 4, 4});
    Rng rng(13 + static_cast<uint64_t>(step));
    for (int64_t i = 0; i < target.numel(); ++i) {
      target[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
    }
    mono_opt.zero_grad();
    mono.backward(loss.compute(mono.forward(x, true), target).grad);
    mono_opt.step();

    piped_opt.zero_grad();
    piped.backward(loss.compute(piped.forward(x, true), target).grad);
    piped_opt.step();
  }

  const NDArray probe = random_batch(2, 99);
  EXPECT_TRUE(piped.forward(probe, false)
                  .allclose(mono.forward(probe, false), 5e-4F));
}

TEST(PipelinedUNet3dTest, RaggedBatchSmallerThanMicrobatches) {
  PipelinedUNet3d piped(tiny(), 4);
  const NDArray x = random_batch(2, 17);  // 2 samples, 4 microbatches
  const NDArray out = piped.forward(x, true);
  EXPECT_EQ(out.shape().n(), 2);
  NDArray grad(out.shape(), 0.01F);
  EXPECT_NO_THROW(piped.backward(grad));
}

TEST(PipelinedUNet3dTest, BackwardBeforeForwardThrows) {
  PipelinedUNet3d piped(tiny(), 2);
  NDArray grad(Shape{2, 1, 4, 4, 4});
  EXPECT_THROW(piped.backward(grad), InvalidArgument);
}

TEST(PipelinedUNet3dTest, WorksWithBatchNormPerMicrobatch) {
  // With batch norm, statistics are per microbatch (the GPipe semantic
  // shift); training must still be finite and usable.
  PipelinedUNet3d piped(tiny(true), 2);
  SoftDiceLoss loss;
  Adam opt(piped.params(), 1e-3);
  const NDArray x = random_batch(4, 19);
  NDArray target(Shape{4, 1, 4, 4, 4}, 0.0F);
  for (int64_t i = 0; i < 32; ++i) target[i] = 1.0F;
  for (int step = 0; step < 2; ++step) {
    opt.zero_grad();
    const NDArray pred = piped.forward(x, true);
    const LossResult res = loss.compute(pred, target);
    EXPECT_TRUE(std::isfinite(res.value));
    piped.backward(res.grad);
    opt.step();
  }
}

}  // namespace
}  // namespace dmis::nn
