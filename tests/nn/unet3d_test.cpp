#include "nn/unet3d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"
#include "tensor/rng.hpp"

namespace dmis::nn {
namespace {

TEST(UNet3dTest, PaperPresetParameterCount) {
  // The paper reports 406,793 parameters (Fig 2 / section III-A) without
  // pinning the transposed-conv channel policy; our keep-channels preset
  // lands at 409,657 (+0.70%). This test freezes OUR count so regressions
  // are loud, and bounds the delta to the paper's figure.
  UNet3d net(UNet3dOptions::paper());
  const int64_t n = net.num_params();
  EXPECT_EQ(n, 409657);
  EXPECT_NEAR(static_cast<double>(n), 406793.0, 0.015 * 406793.0);
}

TEST(UNet3dTest, OutputShapeMatchesInputSpatialDims) {
  UNet3dOptions opts;
  opts.in_channels = 4;
  opts.out_channels = 1;
  opts.base_filters = 2;
  UNet3d net(opts);
  NDArray in(Shape{1, 4, 8, 8, 8});
  const NDArray& out = net.forward(in, false);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 8, 8, 8}));
}

TEST(UNet3dTest, OutputsAreProbabilities) {
  UNet3dOptions opts;
  opts.base_filters = 2;
  UNet3d net(opts);
  NDArray in(Shape{1, 4, 8, 8, 8});
  Rng rng(3);
  for (int64_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.normal());
  const NDArray& out = net.forward(in, true);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], 0.0F);
    EXPECT_LE(out[i], 1.0F);
  }
}

TEST(UNet3dTest, RejectsIndivisibleSpatialExtent) {
  UNet3dOptions opts;
  opts.base_filters = 2;
  UNet3d net(opts);
  EXPECT_EQ(net.spatial_divisor(), 8);
  NDArray in(Shape{1, 4, 12, 8, 8});  // 12 % 8 != 0
  EXPECT_THROW(net.forward(in, true), InvalidArgument);
}

TEST(UNet3dTest, RejectsWrongChannels) {
  UNet3dOptions opts;
  opts.base_filters = 2;
  UNet3d net(opts);
  NDArray in(Shape{1, 3, 8, 8, 8});
  EXPECT_THROW(net.forward(in, true), InvalidArgument);
}

TEST(UNet3dTest, DeterministicForSameSeed) {
  UNet3dOptions opts;
  opts.base_filters = 2;
  opts.seed = 99;
  UNet3d a(opts), b(opts);
  NDArray in(Shape{1, 4, 8, 8, 8}, 0.5F);
  const NDArray out_a = a.forward(in, false);
  const NDArray out_b = b.forward(in, false);
  EXPECT_TRUE(out_a.allclose(out_b, 0.0F));
}

TEST(UNet3dTest, DepthThreeDivisorIsFour) {
  UNet3dOptions opts;
  opts.depth = 3;
  opts.base_filters = 2;
  UNet3d net(opts);
  EXPECT_EQ(net.spatial_divisor(), 4);
  NDArray in(Shape{1, 4, 4, 4, 4});
  EXPECT_NO_THROW(net.forward(in, false));
}

TEST(UNet3dTest, FiltersDoublePerStep) {
  UNet3dOptions opts;
  EXPECT_EQ(opts.filters(1), 8);
  EXPECT_EQ(opts.filters(2), 16);
  EXPECT_EQ(opts.filters(3), 32);
  EXPECT_EQ(opts.filters(4), 64);
}

// Configuration sweep: every (depth, base_filters, norm) combination
// must build, run forward with the right output geometry, and keep its
// probability-map contract.
struct UNetConfig {
  int depth;
  int64_t base_filters;
  NormKind norm;
};

class UNet3dConfigSweep : public ::testing::TestWithParam<UNetConfig> {};

TEST_P(UNet3dConfigSweep, BuildsAndRuns) {
  const UNetConfig cfg = GetParam();
  UNet3dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 1;
  opts.base_filters = cfg.base_filters;
  opts.depth = cfg.depth;
  opts.norm = cfg.norm;
  UNet3d net(opts);
  const int64_t s = net.spatial_divisor();
  NDArray in(Shape{2, 2, s, 2 * s, s});
  Rng rng(4);
  for (int64_t i = 0; i < in.numel(); ++i) {
    in[i] = static_cast<float>(rng.normal());
  }
  const NDArray& out = net.forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 1, s, 2 * s, s}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    ASSERT_GE(out[i], 0.0F);
    ASSERT_LE(out[i], 1.0F);
  }
  // Backward runs without shape errors and produces finite grads.
  NDArray grad(out.shape(), 0.01F);
  net.backward(grad);
  for (const Param& p : net.params()) {
    for (int64_t i = 0; i < p.grad->numel(); ++i) {
      ASSERT_TRUE(std::isfinite((*p.grad)[i])) << p.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, UNet3dConfigSweep,
    ::testing::Values(UNetConfig{2, 2, NormKind::kBatch},
                      UNetConfig{2, 4, NormKind::kInstance},
                      UNetConfig{2, 2, NormKind::kNone},
                      UNetConfig{3, 2, NormKind::kBatch},
                      UNetConfig{3, 2, NormKind::kInstance},
                      UNetConfig{4, 2, NormKind::kNone}),
    [](const ::testing::TestParamInfo<UNetConfig>& info) {
      const char* norm = info.param.norm == NormKind::kBatch ? "bn"
                         : info.param.norm == NormKind::kInstance ? "in"
                                                                  : "none";
      return "d" + std::to_string(info.param.depth) + "f" +
             std::to_string(info.param.base_filters) + "_" + norm;
    });

// The end-to-end learning smoke test: a tiny U-Net must overfit a single
// synthetic volume — loss falls and hard Dice rises well above chance.
TEST(UNet3dTest, OverfitsSingleExample) {
  UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 7;
  UNet3d net(opts);

  // A centered bright cube is the "tumor".
  const int64_t S = 8;
  NDArray x(Shape{1, 1, S, S, S});
  NDArray y(Shape{1, 1, S, S, S});
  Rng rng(11);
  for (int64_t d = 0; d < S; ++d) {
    for (int64_t h = 0; h < S; ++h) {
      for (int64_t w = 0; w < S; ++w) {
        const bool inside = d >= 2 && d < 6 && h >= 2 && h < 6 && w >= 2 && w < 6;
        const int64_t i = (d * S + h) * S + w;
        x[i] = (inside ? 1.0F : -1.0F) +
               static_cast<float>(rng.normal(0.0, 0.1));
        y[i] = inside ? 1.0F : 0.0F;
      }
    }
  }

  SoftDiceLoss loss;
  Adam opt(net.params(), 1e-2);
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    opt.zero_grad();
    const NDArray& pred = net.forward(x, true);
    const LossResult res = loss.compute(pred, y);
    if (epoch == 0) first_loss = res.value;
    last_loss = res.value;
    net.backward(res.grad);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);

  const NDArray& pred = net.forward(x, true);
  EXPECT_GT(dice_score(pred, y), 0.85);
}

}  // namespace
}  // namespace dmis::nn
