#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "common/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dmis::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    MetricsRegistry::instance().reset();
    Tracer::instance().disable();
    Tracer::instance().clear();
    dir_ = ::testing::TempDir() + "dmis_flight_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    FlightRecorder::instance().configure(dir_);
  }
  void TearDown() override {
    FlightRecorder::instance().configure("");  // disarm for other suites
    common::FaultInjector::instance().reset();
    MetricsRegistry::instance().reset();
    Tracer::instance().disable();
    Tracer::instance().clear();
  }

  std::string dir_;
};

TEST_F(FlightRecorderTest, DisarmedDumpReturnsEmpty) {
  FlightRecorder::instance().configure("");
  EXPECT_EQ(FlightRecorder::instance().dump("test.disarmed"), "");
}

TEST_F(FlightRecorderTest, DumpCarriesTriggerMetricsSpansAndHealth) {
  auto& recorder = FlightRecorder::instance();
  MetricsRegistry::instance().counter("test.flight.counter").add(5);
  Tracer::instance().enable();
  Tracer::instance().record_span("test.flight.span", 10, 20);
  const int token = recorder.register_health_provider(
      "test.subsystem", [] { return std::string("{\"alive\":true}"); });

  const std::string path = recorder.dump("test.trigger");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(recorder.last_path(), path);
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("\"trigger\":\"test.trigger\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"test.flight.span\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"test.flight.counter\",\"value\":5"),
            std::string::npos);
  EXPECT_NE(dump.find("\"test.subsystem\":{\"alive\":true}"),
            std::string::npos);

  // Unregistered providers disappear from later dumps.
  recorder.unregister_health_provider(token);
  const std::string path2 = recorder.dump("test.trigger2");
  ASSERT_FALSE(path2.empty());
  EXPECT_EQ(read_file(path2).find("test.subsystem"), std::string::npos);
}

TEST_F(FlightRecorderTest, DumpsAreSequencedNotOverwritten) {
  auto& recorder = FlightRecorder::instance();
  const int64_t before = recorder.dumps();
  const std::string a = recorder.dump("test.seq.a");
  const std::string b = recorder.dump("test.seq.b");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.dumps(), before + 2);
  EXPECT_NE(read_file(a).find("test.seq.a"), std::string::npos);
  EXPECT_NE(read_file(b).find("test.seq.b"), std::string::npos);
}

// The chaos contract: an injected collective fault that poisons the
// group must leave a flight dump holding the failing collective's
// spans and a health table with the dead rank — that dump is the
// post-mortem for undiagnosable chaos-gate failures.
TEST_F(FlightRecorderTest, CommAbortDumpsFailingCollectiveSpan) {
  auto& recorder = FlightRecorder::instance();
  const int64_t dumps_before = recorder.dumps();
  Tracer::instance().enable();
  // Fault the *second* allreduce on rank 1. The injection point sits at
  // collective entry (before the span opens), so the warm-up round is
  // what guarantees comm.allreduce spans are already recorded when the
  // abort-path dump renders.
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r1", 2);

  auto comms = comm::make_group(2);
  std::atomic<int> comm_errors{0};
  std::thread peer([&] {
    std::vector<float> buf(8, 1.0F);
    comms[0].all_reduce_sum(buf);  // warm-up succeeds
    try {
      comms[0].all_reduce_sum(buf);  // poisoned mid-rendezvous
    } catch (const comm::CommError&) {
      comm_errors.fetch_add(1);
    }
  });

  std::vector<float> buf(8, 1.0F);
  comms[1].all_reduce_sum(buf);
  bool injected = false;
  try {
    comms[1].all_reduce_sum(buf);
  } catch (const common::FaultInjected&) {
    injected = true;
    // The dying rank propagates failure instead of deadlocking the
    // ring — this abort triggers the flight dump.
    comms[1].abort("injected collective fault");
  }
  peer.join();
  EXPECT_TRUE(injected);
  EXPECT_EQ(comm_errors.load(), 1);

  ASSERT_GT(recorder.dumps(), dumps_before);
  const std::string dump = read_file(recorder.last_path());
  EXPECT_NE(dump.find("\"trigger\":\"comm.abort\""), std::string::npos)
      << dump.substr(0, 512);
  // The failing collective's span made it into the dump...
  EXPECT_NE(dump.find("\"name\":\"comm.allreduce\""), std::string::npos);
  // ...alongside the group health table showing the poisoned state and
  // the dead rank.
  EXPECT_NE(dump.find("\"comm.group"), std::string::npos);
  EXPECT_NE(dump.find("\"aborted\":true"), std::string::npos);
  EXPECT_NE(dump.find("\"dead\""), std::string::npos);
}

TEST_F(FlightRecorderTest, Sigusr1TriggersOnDemandDump) {
  auto& recorder = FlightRecorder::instance();
  // configure() in SetUp armed the recorder and installed the SIGUSR1
  // handler + watcher thread (the disposition was still SIG_DFL).
  const int64_t before = recorder.dumps();
  ASSERT_EQ(::raise(SIGUSR1), 0);

  // The handler defers to the watcher thread via the self-pipe; poll
  // briefly for the dump to land.
  bool dumped = false;
  for (int i = 0; i < 200 && !dumped; ++i) {
    dumped = recorder.dumps() > before;
    if (!dumped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(dumped);
  EXPECT_NE(read_file(recorder.last_path()).find("signal.SIGUSR1"),
            std::string::npos);
}

TEST_F(FlightRecorderTest, DumpTelemetryNowIsSafeWithoutEnvExports) {
  // DMIS_METRICS / DMIS_TRACE are unset in the test environment: the
  // once-guard exports are no-ops, the flight dump still fires, and
  // calling it twice produces two sequenced dumps (the flight side is
  // per-trigger, not once-only).
  auto& recorder = FlightRecorder::instance();
  const int64_t before = recorder.dumps();
  dump_telemetry_now("test.now");
  dump_telemetry_now("test.now");
  EXPECT_EQ(recorder.dumps(), before + 2);
}

}  // namespace
}  // namespace dmis::obs
