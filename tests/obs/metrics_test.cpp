#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/rolling.hpp"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dmis::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::instance().reset(); }
  void TearDown() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, CounterHammeredFromManyThreadsIsExact) {
  Counter& c = MetricsRegistry::instance().counter("test.hammer");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
}

TEST_F(MetricsTest, CounterLookupReturnsSameInstrument) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.same");
  Counter& b = reg.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, HistogramBucketsObservations) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.hist", std::vector<double>{1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary counts down)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 0);
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow bucket
}

TEST_F(MetricsTest, HistogramHammeredFromManyThreadsIsExact) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.hist_hammer", std::vector<double>{10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(i % 2));  // integer values: exact sum
      }
    });
  }
  for (auto& t : threads) t.join();
  const int64_t total = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(h.count(), total);
  // Half the observations are 1.0; sums this small are exact in double.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(total / 2));
  EXPECT_EQ(h.bucket_count(0), total);  // all values <= 10
}

TEST_F(MetricsTest, ResetZeroesButKeepsReferences) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.reset");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  c.add(1);  // cached reference still valid
  EXPECT_EQ(reg.counter("test.reset").value(), 1);
}

TEST_F(MetricsTest, SnapshotCoversAllInstrumentKinds) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.snap_c").add(3);
  reg.gauge("test.snap_g").set(2.5);
  reg.histogram("test.snap_h").observe(42.0);

  const MetricsSnapshot snap = reg.snapshot();
  bool saw_c = false, saw_g = false, saw_h = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.snap_c") {
      saw_c = true;
      EXPECT_EQ(c.value, 3);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "test.snap_g") {
      saw_g = true;
      EXPECT_DOUBLE_EQ(g.value, 2.5);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snap_h") {
      saw_h = true;
      EXPECT_EQ(h.count, 1);
      EXPECT_EQ(h.buckets.size(), h.bounds.size() + 1);
    }
  }
  EXPECT_TRUE(saw_c);
  EXPECT_TRUE(saw_g);
  EXPECT_TRUE(saw_h);
}

TEST_F(MetricsTest, DumpJsonlEmitsOneObjectPerLine) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.jsonl_counter").add(11);
  reg.histogram("test.jsonl_hist", std::vector<double>{1.0}).observe(0.5);

  std::ostringstream os;
  reg.dump_jsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("{\"type\":\"counter\",\"name\":\"test.jsonl_counter\","
                     "\"value\":11}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(out.find("{\"le\":\"inf\""), std::string::npos);

  // Every line is a {...} object.
  std::istringstream lines(out);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++n;
  }
  EXPECT_GE(n, 2);
}

TEST_F(MetricsTest, QuantileInterpolatesInsideBucket) {
  // Standalone histogram — the shared estimator the exporter, dmis_top
  // and bench_serve all reuse.
  Histogram h("test.quantile", {10.0, 20.0, 40.0});
  // 10 observations in (10, 20]: p50 lands mid-bucket.
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  // rank 5 of 10, all in bucket (10, 20] -> 10 + 10 * 5/10 = 15.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST_F(MetricsTest, QuantileSpansBuckets) {
  Histogram h("test.quantile2", {10.0, 20.0, 40.0});
  for (int i = 0; i < 8; ++i) h.observe(5.0);    // bucket [0, 10]
  for (int i = 0; i < 2; ++i) h.observe(30.0);   // bucket (20, 40]
  // p50: rank 5 of 10 inside the first bucket -> 10 * 5/8 = 6.25.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 6.25);
  // p95: rank 9.5; first bucket holds 8, so 1.5 into the (20, 40]
  // bucket of 2 -> 20 + 20 * 1.5/2 = 35.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 35.0);
}

TEST_F(MetricsTest, QuantileEmptyAndOverflow) {
  Histogram h("test.quantile3", {10.0, 20.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> 0
  h.observe(100.0);                        // overflow bucket
  // Overflow clamps to the last finite bound (Prometheus behavior).
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
}

// Regressions for the quantile edge cases: a single sample, q=0 with
// empty leading buckets, everything in the overflow bucket, and a
// bound-less histogram. The estimator must skip empty buckets (so q=0
// lands at the lower edge of the first *populated* bucket) and clamp
// interpolation inside the containing bucket.
TEST_F(MetricsTest, QuantileSingleSampleInterpolatesItsBucket) {
  Histogram h("test.quantile_single", {10.0, 20.0, 40.0});
  h.observe(15.0);  // one sample, bucket (10, 20]
  // rank q*1 inside a bucket of one: 10 + 10*q for every q.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST_F(MetricsTest, QuantileZeroSkipsEmptyLeadingBuckets) {
  Histogram h("test.quantile_q0", {10.0, 20.0, 40.0});
  for (int i = 0; i < 4; ++i) h.observe(30.0);  // all in (20, 40]
  // q=0 must land at the lower edge of the populated bucket — not at
  // the upper edge of an empty leading one.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
}

TEST_F(MetricsTest, QuantileAllInOverflowClampsToLastBound) {
  Histogram h("test.quantile_overflow", {10.0, 20.0});
  for (int i = 0; i < 3; ++i) h.observe(100.0);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 20.0) << "q=" << q;
  }
}

TEST_F(MetricsTest, QuantileWithoutBoundsIsZero) {
  Histogram h("test.quantile_boundless", {});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(7.0);  // lands in the (only) overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // no finite bound to clamp to
}

TEST_F(MetricsTest, QuantileFromSnapshotBucketsMatchesLive) {
  Histogram h("test.quantile4", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5 + 0.07 * (i % 100));
  std::vector<int64_t> buckets;
  for (size_t i = 0; i <= h.bounds().size(); ++i) {
    buckets.push_back(h.bucket_count(i));
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(Histogram::quantile_from(h.bounds(), buckets, q),
                     h.quantile(q));
  }
}

TEST_F(MetricsTest, RollingInstrumentsAppearInSnapshotAndJsonl) {
  auto& reg = MetricsRegistry::instance();
  reg.rolling_counter("test.roll_counter").add(3);
  reg.rolling_histogram("test.roll_hist").observe(100.0);

  const MetricsSnapshot snap = reg.snapshot();
  bool saw_rc = false;
  bool saw_rh = false;
  for (const auto& rc : snap.rolling_counters) {
    if (rc.name == "test.roll_counter") {
      saw_rc = true;
      EXPECT_EQ(rc.total, 3);
      EXPECT_EQ(rc.windowed, 3);
      EXPECT_GT(rc.rate_per_sec, 0.0);
    }
  }
  for (const auto& rh : snap.rolling_histograms) {
    if (rh.name == "test.roll_hist") {
      saw_rh = true;
      EXPECT_EQ(rh.windowed_count, 1);
      EXPECT_GT(rh.p50, 0.0);
    }
  }
  EXPECT_TRUE(saw_rc);
  EXPECT_TRUE(saw_rh);

  std::ostringstream os;
  reg.dump_jsonl(os);
  EXPECT_NE(os.str().find("\"type\":\"rolling_counter\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"rolling_histogram\""),
            std::string::npos);
}

}  // namespace
}  // namespace dmis::obs
