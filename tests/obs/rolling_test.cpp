#include "obs/rolling.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dmis::obs {
namespace {

// All tests drive the window with explicit `_at` timestamps, so slot
// expiry is deterministic regardless of wall-clock scheduling.
constexpr int64_t kWindowUs = 10'000'000;  // 10 s in 10 slots of 1 s
constexpr int kSlots = 10;
constexpr int64_t kSlotUs = kWindowUs / kSlots;

TEST(RollingCounterTest, WindowForgetsOldSlots) {
  RollingCounter c("test.rc", kWindowUs, kSlots);
  c.add_at(1 * kSlotUs, 5);
  c.add_at(2 * kSlotUs, 7);
  EXPECT_EQ(c.windowed_at(2 * kSlotUs), 12);
  EXPECT_EQ(c.total(), 12);

  // Advance just past the window: slot 1 fell out, slot 2 remains.
  EXPECT_EQ(c.windowed_at((1 + kSlots) * kSlotUs), 7);
  // Far future: everything forgotten, total still cumulative.
  EXPECT_EQ(c.windowed_at(100 * kSlotUs), 0);
  EXPECT_EQ(c.total(), 12);
}

TEST(RollingCounterTest, SlotReuseZeroesStaleCounts) {
  RollingCounter c("test.rc2", kWindowUs, kSlots);
  c.add_at(3 * kSlotUs, 100);
  // Same ring index one full revolution later must not inherit the 100.
  c.add_at((3 + kSlots) * kSlotUs, 1);
  EXPECT_EQ(c.windowed_at((3 + kSlots) * kSlotUs), 1);
}

TEST(RollingCounterTest, RateUsesCoveredSpan) {
  // Rates divide by covered time = min(window, instrument age), so the
  // timestamps here must be anchored at the real construction time.
  const int64_t t0 = Tracer::now_us();
  RollingCounter c("test.rc3", kWindowUs, kSlots);
  // 50 events in the first slot of life: the denominator clamps to one
  // slot width, not the whole empty window.
  c.add_at(t0 + kSlotUs / 2, 50);
  EXPECT_GE(c.rate_at(t0 + kSlotUs / 2), 45.0);
  // Nine slots later the covered span has grown to ~9 s: 50/9 ~ 5.6.
  EXPECT_NEAR(c.rate_at(t0 + kWindowUs - kSlotUs), 50.0 / 9.0, 1.0);
}

TEST(RollingHistogramTest, QuantilesTrackTheWindow) {
  RollingHistogram h("test.rh", {10.0, 100.0, 1000.0}, kWindowUs, kSlots);
  // Old slow phase...
  for (int i = 0; i < 20; ++i) h.observe_at(1 * kSlotUs, 500.0);
  // ...new fast phase.
  for (int i = 0; i < 20; ++i) h.observe_at(2 * kSlotUs, 50.0);

  // Both phases in window: p50 sits at the boundary region.
  EXPECT_EQ(h.windowed_count_at(2 * kSlotUs), 40);
  // Slow phase expired: only the fast observations remain.
  const int64_t later = (1 + kSlots) * kSlotUs;
  EXPECT_EQ(h.windowed_count_at(later), 20);
  const double p50 = h.quantile_at(later, 0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  // p99 no longer sees the 500s either.
  EXPECT_LE(h.quantile_at(later, 0.99), 100.0);
}

TEST(RollingHistogramTest, WindowedBucketsMergeLiveSlotsOnly) {
  RollingHistogram h("test.rh2", {10.0}, kWindowUs, kSlots);
  h.observe_at(1 * kSlotUs, 5.0);
  h.observe_at(2 * kSlotUs, 50.0);
  std::vector<int64_t> buckets = h.windowed_buckets_at(2 * kSlotUs);
  ASSERT_EQ(buckets.size(), 2U);
  EXPECT_EQ(buckets[0], 1);  // <= 10
  EXPECT_EQ(buckets[1], 1);  // overflow

  buckets = h.windowed_buckets_at((1 + kSlots) * kSlotUs);
  EXPECT_EQ(buckets[0], 0);
  EXPECT_EQ(buckets[1], 1);
}

TEST(RollingTest, ConcurrentAddersAndReadersAreExact) {
  // Default 60 s window: nothing expires mid-test.
  RollingCounter c("test.rc4");
  RollingHistogram h("test.rh3", {1e3, 1e6});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(500.0);
      }
    });
  }
  // Concurrent readers (the scrape path) must race cleanly under TSan.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        (void)c.rate_per_sec();
        (void)h.quantile(0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(c.windowed(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.windowed_count(), int64_t{kThreads} * kPerThread);
}

TEST(RollingTest, RegistryRegistrationIsFirstWinsAndStable) {
  auto& reg = MetricsRegistry::instance();
  RollingCounter& a = reg.rolling_counter("test.reg_rc");
  RollingCounter& b = reg.rolling_counter("test.reg_rc", 5'000'000);
  EXPECT_EQ(&a, &b);
  RollingHistogram& ha = reg.rolling_histogram("test.reg_rh");
  RollingHistogram& hb = reg.rolling_histogram("test.reg_rh");
  EXPECT_EQ(&ha, &hb);
  reg.reset();
  EXPECT_EQ(a.total(), 0);
}

}  // namespace
}  // namespace dmis::obs
