#include "obs/telemetry_server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/rolling.hpp"
#include "obs/trace.hpp"

namespace dmis::obs {
namespace {

struct HttpResponse {
  int status = -1;
  std::string body;
};

/// Minimal blocking HTTP/1.1 client: one request, read to EOF (the
/// server always closes). Good enough to exercise the real socket path.
HttpResponse http_request(uint16_t port, const std::string& request) {
  HttpResponse r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return r;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    r.status = std::atoi(raw.c_str() + std::strlen("HTTP/1.1 "));
  }
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) r.body = raw.substr(split + 4);
  return r;
}

HttpResponse http_get(uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().reset();
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST_F(TelemetryServerTest, MetricNameManglingAndRankLabel) {
  std::string rank;
  EXPECT_EQ(TelemetryServer::prometheus_metric_name("comm.allreduce_bytes",
                                                    rank),
            "dmis_comm_allreduce_bytes");
  EXPECT_EQ(rank, "");

  EXPECT_EQ(TelemetryServer::prometheus_metric_name("train.rank_step_us.r3",
                                                    rank),
            "dmis_train_rank_step_us");
  EXPECT_EQ(rank, "3");

  EXPECT_EQ(
      TelemetryServer::prometheus_metric_name("comm.all_reduce.r12", rank),
      "dmis_comm_all_reduce");
  EXPECT_EQ(rank, "12");

  // ".r<non-digits>" is NOT the rank convention — keep it in the name.
  EXPECT_EQ(TelemetryServer::prometheus_metric_name("serve.radius", rank),
            "dmis_serve_radius");
  EXPECT_EQ(rank, "");

  // Arbitrary punctuation mangles to '_'.
  EXPECT_EQ(TelemetryServer::prometheus_metric_name("a-b/c d", rank),
            "dmis_a_b_c_d");
  EXPECT_EQ(rank, "");
}

TEST_F(TelemetryServerTest, LabelEscaping) {
  EXPECT_EQ(TelemetryServer::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(TelemetryServer::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(TelemetryServer::prometheus_escape_label("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(TelemetryServer::prometheus_escape_label("line\nbreak"),
            "line\\nbreak");
}

TEST_F(TelemetryServerTest, RenderMetricsIsPrometheusConformant) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.scrape.count").add(42);
  reg.gauge("test.scrape.gauge").set(1.5);
  Histogram& h = reg.histogram("test.scrape.hist",
                               std::vector<double>{1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.0);
  h.observe(1000.0);
  // Two ranks of one instrument must share a single family/TYPE line.
  reg.counter("test.scrape.ranked.r0").add(1);
  reg.counter("test.scrape.ranked.r1").add(2);

  const std::string text = TelemetryServer::render_metrics();

  EXPECT_NE(text.find("# TYPE dmis_test_scrape_count counter\n"
                      "dmis_test_scrape_count 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE dmis_test_scrape_gauge gauge\n"
                      "dmis_test_scrape_gauge 1.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dmis_test_scrape_ranked{rank=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dmis_test_scrape_ranked{rank=\"1\"} 2"),
            std::string::npos);

  // Exactly one TYPE line per family, even multi-rank ones.
  size_t type_lines = 0;
  for (size_t pos = 0;
       (pos = text.find("# TYPE dmis_test_scrape_ranked ", pos)) !=
       std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1U);

  // Histogram buckets: cumulative, non-decreasing, +Inf == _count.
  std::istringstream lines(text);
  std::string line;
  std::vector<int64_t> bucket_values;
  int64_t inf_value = -1;
  int64_t count_value = -2;
  bool saw_type = false;
  while (std::getline(lines, line)) {
    if (line == "# TYPE dmis_test_scrape_hist histogram") saw_type = true;
    if (line.rfind("dmis_test_scrape_hist_bucket{", 0) == 0) {
      const size_t sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos);
      bucket_values.push_back(std::atoll(line.c_str() + sp + 1));
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_value = bucket_values.back();
      }
    }
    if (line.rfind("dmis_test_scrape_hist_count ", 0) == 0) {
      count_value = std::atoll(
          line.c_str() + std::strlen("dmis_test_scrape_hist_count "));
    }
  }
  EXPECT_TRUE(saw_type);
  ASSERT_EQ(bucket_values.size(), 4U);  // 3 bounds + overflow
  for (size_t i = 1; i < bucket_values.size(); ++i) {
    EXPECT_GE(bucket_values[i], bucket_values[i - 1]) << "bucket " << i;
  }
  EXPECT_EQ(inf_value, 4);
  EXPECT_EQ(count_value, inf_value);

  // Rolling instruments surface as *_total/_rate and quantile gauges.
  reg.rolling_counter("test.scrape.rolling").add(7);
  reg.rolling_histogram("test.scrape.rhist").observe(50.0);
  const std::string text2 = TelemetryServer::render_metrics();
  EXPECT_NE(text2.find("dmis_test_scrape_rolling_total 7"),
            std::string::npos);
  EXPECT_NE(text2.find("# TYPE dmis_test_scrape_rolling_rate gauge"),
            std::string::npos);
  EXPECT_NE(text2.find("dmis_test_scrape_rhist_p50 "), std::string::npos);
  EXPECT_NE(text2.find("dmis_test_scrape_rhist_p99 "), std::string::npos);
}

TEST_F(TelemetryServerTest, ServesMetricsOverRealSocket) {
  MetricsRegistry::instance().counter("test.http.counter").add(9);
  TelemetryServer server(0);
  ASSERT_GT(server.port(), 0);

  const HttpResponse r = http_get(server.port(), "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("dmis_test_http_counter 9"), std::string::npos);
  EXPECT_NE(r.body.find("dmis_telemetry_build_info{"), std::string::npos);
}

TEST_F(TelemetryServerTest, HealthzReflectsServeBreakerState) {
  TelemetryServer server(0);

  // No serve.health gauge -> healthy.
  HttpResponse r = http_get(server.port(), "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\":\"ok\""), std::string::npos);

  // Breaker open (serve.health >= 1) -> 503 degraded, and the elastic
  // world size rides along in the body.
  MetricsRegistry::instance().gauge("serve.health").set(1.0);
  MetricsRegistry::instance().gauge("train.elastic.world_size").set(3.0);
  r = http_get(server.port(), "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(r.body.find("\"serve_health\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"elastic_world_size\":3"), std::string::npos);

  // Breaker closes again -> back to 200.
  MetricsRegistry::instance().gauge("serve.health").set(0.0);
  r = http_get(server.port(), "/healthz");
  EXPECT_EQ(r.status, 200);
}

TEST_F(TelemetryServerTest, SpansEndpointReturnsRecordedSpans) {
  Tracer::instance().enable();
  Tracer::instance().record_span("test.http.span", 100, 50,
                                 {{"bytes", 4096}});
  TelemetryServer server(0);

  const HttpResponse r = http_get(server.port(), "/spans");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(r.body.find("\"name\":\"test.http.span\""), std::string::npos);
  EXPECT_NE(r.body.find("\"bytes\":4096"), std::string::npos);
}

TEST_F(TelemetryServerTest, UnknownPathAndMethodAreRejected) {
  TelemetryServer server(0);
  EXPECT_EQ(http_get(server.port(), "/nope").status, 404);
  EXPECT_EQ(http_request(server.port(),
                         "POST /metrics HTTP/1.1\r\nHost: x\r\n"
                         "Content-Length: 0\r\n\r\n")
                .status,
            405);
  // Query strings are ignored for routing.
  EXPECT_EQ(http_get(server.port(), "/metrics?x=1").status, 200);
}

TEST_F(TelemetryServerTest, StopIsIdempotentAndRefusesNewConnections) {
  TelemetryServer server(0);
  const uint16_t port = server.port();
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(http_get(port, "/healthz").status, -1);
}

// The TSan gate: scrapes render from snapshots while writer threads
// hammer every instrument kind. Any unsynchronized access shows up as a
// race report; the assertions just keep the compiler honest.
TEST_F(TelemetryServerTest, ConcurrentScrapeWhileUpdating) {
  auto& reg = MetricsRegistry::instance();
  Tracer::instance().enable();
  TelemetryServer server(0);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&reg, &stop, t] {
      Counter& c = reg.counter("test.race.counter");
      Gauge& g = reg.gauge("test.race.gauge");
      Histogram& h = reg.histogram("test.race.hist.r" + std::to_string(t));
      RollingCounter& rc = reg.rolling_counter("test.race.rolling");
      RollingHistogram& rh = reg.rolling_histogram("test.race.rhist");
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        g.set(static_cast<double>(i));
        h.observe(static_cast<double>(i % 100));
        rc.add(1);
        rh.observe(static_cast<double>(i % 1000));
        Tracer::instance().record_instant("test.race.instant");
        ++i;
      }
    });
  }

  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&server] {
      for (int i = 0; i < 10; ++i) {
        const HttpResponse m = http_get(server.port(), "/metrics");
        EXPECT_EQ(m.status, 200);
        EXPECT_NE(m.body.find("# TYPE"), std::string::npos);
        EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
        EXPECT_EQ(http_get(server.port(), "/spans").status, 200);
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
}

}  // namespace
}  // namespace dmis::obs
