// End-to-end telemetry over a real FIFO tune_run: the acceptance check
// that MetricsRegistry totals agree with the TuneResult and the chrome
// trace carries trial / queue-wait / retry spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "common/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "raylite/tune.hpp"

namespace dmis::obs {
namespace {

int64_t counter_value(const char* name) {
  return MetricsRegistry::instance().counter(name).value();
}

int64_t span_count(const std::vector<TraceEvent>& evs, const char* name) {
  return std::count_if(evs.begin(), evs.end(), [&](const TraceEvent& e) {
    return std::string(e.name) == name;
  });
}

class TelemetryTuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().reset();
    Tracer::instance().disable();
    Tracer::instance().clear();
    common::FaultInjector::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
    common::FaultInjector::instance().reset();
    MetricsRegistry::instance().reset();
  }
};

TEST_F(TelemetryTuneTest, FifoSweepTraceAndCountersMatchResult) {
  Tracer::instance().enable();

  // 4 configs, 2 worker slots, 3 iterations each — a miniature of the
  // paper's FIFO experiment-parallel sweep.
  std::vector<ray::ParamSet> configs(4);
  for (size_t i = 0; i < configs.size(); ++i) {
    configs[i]["lr"] = 1e-4 * static_cast<double>(i + 1);
  }
  // Each trial runs a 2-rank ring allreduce per step (a miniature
  // mirrored trainer), so the trace carries trial, train-step AND
  // allreduce-phase spans — the acceptance trio.
  constexpr size_t kGradLen = 64;
  const auto trainable = [](const ray::ParamSet& params,
                            ray::Reporter& reporter) {
    for (int64_t it = 0; it < 3; ++it) {
      DMIS_TRACE_SPAN("train.step");
      std::vector<comm::Communicator> group = comm::make_group(2);
      std::vector<float> grad_a(kGradLen, 1.0F), grad_b(kGradLen, 2.0F);
      std::thread peer([&] { group[1].all_reduce_sum(grad_b); });
      group[0].all_reduce_sum(grad_a);
      peer.join();
      const double lr = std::get<double>(params.at("lr"));
      reporter.report(it, {{"val_dice", 0.5 + lr}});
    }
  };

  ray::TuneOptions options;
  options.num_gpus = 2;
  const ray::TuneResult result = ray::tune_run(trainable, configs, options);
  Tracer::instance().disable();

  ASSERT_EQ(result.count(ray::TrialStatus::kTerminated), 4);

  // Counters agree with the result object.
  int64_t result_attempts = 0;
  for (const ray::Trial& t : result.trials) result_attempts += t.attempts;
  EXPECT_EQ(counter_value("tune.attempts"), result_attempts);
  EXPECT_EQ(counter_value("tune.trials_completed"), 4);
  EXPECT_EQ(counter_value("tune.transient_failures"),
            result.transient_failures());
  EXPECT_EQ(counter_value("tune.trials_failed"), 0);

  // Allreduce accounting: 2 ranks x 3 steps x 4 trials, kGradLen floats
  // each.
  EXPECT_EQ(counter_value("comm.allreduce_calls"), 2 * 3 * 4);
  EXPECT_EQ(counter_value("comm.allreduce_bytes"),
            static_cast<int64_t>(2 * 3 * 4 * kGradLen * sizeof(float)));

  // The trace carries one trial + one queue-wait span per attempt, the
  // trainable's train-step spans, and the allreduce phase spans.
  const std::vector<TraceEvent> evs = Tracer::instance().events();
  EXPECT_EQ(span_count(evs, "tune.trial"), result_attempts);
  EXPECT_EQ(span_count(evs, "tune.queue_wait"), result_attempts);
  EXPECT_EQ(span_count(evs, "train.step"), 4 * 3);
  EXPECT_EQ(span_count(evs, "comm.allreduce"), 2 * 3 * 4);
  EXPECT_EQ(span_count(evs, "comm.allreduce.reduce_scatter"), 2 * 3 * 4);
  EXPECT_EQ(span_count(evs, "comm.allreduce.all_gather"), 2 * 3 * 4);

  // And the export is loadable (non-empty traceEvents array).
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  EXPECT_NE(os.str().find("\"name\":\"tune.trial\""), std::string::npos);
}

TEST_F(TelemetryTuneTest, RetriedSweepCountsTransientFailures) {
  Tracer::instance().enable();
  // Fire on the first two calls of the trial body -> two transient
  // failures, both retried successfully.
  common::FaultInjector::instance().arm_nth_call("telemetry.trial", 1, 2);

  std::vector<ray::ParamSet> configs(3);
  for (size_t i = 0; i < configs.size(); ++i) {
    configs[i]["id"] = static_cast<int64_t>(i);
  }
  const auto trainable = [](const ray::ParamSet&, ray::Reporter& reporter) {
    common::FaultInjector::instance().maybe_fail("telemetry.trial");
    reporter.report(0, {{"val_dice", 0.5}});
  };

  ray::TuneOptions options;
  options.num_gpus = 1;  // serial: deterministic fire pattern
  options.retry.max_retries = 3;
  options.retry.backoff_base = 0.0;
  const ray::TuneResult result = ray::tune_run(trainable, configs, options);
  Tracer::instance().disable();

  EXPECT_EQ(result.count(ray::TrialStatus::kTerminated), 3);
  EXPECT_EQ(result.transient_failures(), 2);
  EXPECT_EQ(counter_value("tune.transient_failures"), 2);
  EXPECT_EQ(counter_value("tune.trials_completed"), 3);
  EXPECT_EQ(counter_value("tune.attempts"), 5);  // 3 trials + 2 retries

  const std::vector<TraceEvent> evs = Tracer::instance().events();
  EXPECT_EQ(span_count(evs, "tune.trial"), 5);
  EXPECT_GE(span_count(evs, "tune.retry_backoff"), 1);
}

}  // namespace
}  // namespace dmis::obs
