#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dmis::obs {
namespace {

/// Minimal JSON well-formedness check: every brace/bracket balances
/// (respecting strings and escapes) and the document is one value.
/// Enough to catch unbalanced output without a full parser.
bool json_brackets_balance(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    DMIS_TRACE_SPAN("test.disabled");
    DMIS_TRACE_SPAN("test.disabled_args", {{"k", 1}});
  }
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TraceTest, NestedSpansBracketAndOrder) {
  Tracer::instance().enable();
  {
    DMIS_TRACE_SPAN("test.outer", {{"depth", 0}});
    {
      DMIS_TRACE_SPAN("test.inner", {{"depth", 1}});
    }
  }
  Tracer::instance().disable();

  const std::vector<TraceEvent> evs = Tracer::instance().events();
  ASSERT_EQ(evs.size(), 2U);
  // Guards record at destruction: inner closes first.
  const TraceEvent& inner = evs[0];
  const TraceEvent& outer = evs[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  // The inner span nests inside the outer one.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  // Args survive.
  ASSERT_EQ(inner.n_args, 1);
  EXPECT_STREQ(inner.args[0].key, "depth");
  EXPECT_EQ(inner.args[0].value, 1);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST_F(TraceTest, RecordSpanWithExplicitTimestamps) {
  Tracer::instance().enable();
  Tracer::instance().record_span("test.queue_wait", 100, 50,
                                 {{"trial", 7}});
  Tracer::instance().disable();
  const auto evs = Tracer::instance().events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].ts_us, 100);
  EXPECT_EQ(evs[0].dur_us, 50);
  ASSERT_EQ(evs[0].n_args, 1);
  EXPECT_EQ(evs[0].args[0].value, 7);
}

TEST_F(TraceTest, SpansFromManyThreadsAllLand) {
  Tracer::instance().enable();
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        DMIS_TRACE_SPAN("test.mt", {{"i", i}});
      }
    });
  }
  for (auto& t : threads) t.join();
  Tracer::instance().disable();

  const auto evs = Tracer::instance().events();
  const auto n = std::count_if(evs.begin(), evs.end(), [](const TraceEvent& e) {
    return std::string(e.name) == "test.mt";
  });
  EXPECT_EQ(n + Tracer::instance().dropped(),
            int64_t{kThreads} * kSpans);
  EXPECT_EQ(Tracer::instance().dropped(), 0);
}

TEST_F(TraceTest, ChromeExportIsBalancedJsonWithEvents) {
  Tracer::instance().enable();
  {
    DMIS_TRACE_SPAN("test.export \"quoted\"",
                    {{"bytes", int64_t{1} << 40}});
    std::thread other([] { DMIS_TRACE_SPAN("test.export_other"); });
    other.join();
  }
  Tracer::instance().record_instant("test.instant", {{"mark", 1}});
  Tracer::instance().disable();

  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_TRUE(json_brackets_balance(json)) << json;
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0U);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("test.export_other"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1099511627776"), std::string::npos);
  // The quote in the span name is escaped.
  EXPECT_NE(json.find("test.export \\\"quoted\\\""), std::string::npos);
}

TEST_F(TraceTest, FullBufferDropsInsteadOfWrapping) {
  Tracer& tracer = Tracer::instance();
  tracer.set_buffer_capacity(16);
  tracer.enable();
  // A fresh thread gets a fresh (or recycled) buffer; either way the
  // drop accounting must kick in past capacity.
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      DMIS_TRACE_SPAN("test.full");
    }
  });
  t.join();
  tracer.disable();
  EXPECT_GT(tracer.dropped(), 0);
  tracer.set_buffer_capacity(65536);
}

}  // namespace
}  // namespace dmis::obs
