#include "raylite/actor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injector.hpp"

namespace dmis::ray {
namespace {

TEST(ActorTest, StatePersistsAcrossCalls) {
  RayLite cluster(Resources{0, 2}, 2);
  ActorHandle counter = spawn_actor(cluster, Resources{0, 1},
                                    [] { return std::any(int{0}); });
  for (int i = 1; i <= 5; ++i) {
    Future f = counter.call([](std::any& s) {
      return std::any(++std::any_cast<int&>(s));
    });
    EXPECT_EQ(std::any_cast<int>(f.get()), i);
  }
  counter.kill();
}

TEST(ActorTest, CallsExecuteInSubmissionOrder) {
  RayLite cluster(Resources{0, 1}, 1);
  ActorHandle log = spawn_actor(cluster, Resources{0, 0}, [] {
    return std::any(std::vector<int>{});
  });
  std::vector<Future> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(log.call([i](std::any& s) {
      std::any_cast<std::vector<int>&>(s).push_back(i);
      return std::any{};
    }));
  }
  Future readback = log.call([](std::any& s) {
    return std::any(std::any_cast<std::vector<int>&>(s));
  });
  const auto seen = std::any_cast<std::vector<int>>(readback.get());
  ASSERT_EQ(seen.size(), 20U);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(ActorTest, PinsResourcesForLifetime) {
  RayLite cluster(Resources{2, 4}, 2);
  ActorHandle a = spawn_actor(cluster, Resources{1, 1},
                              [] { return std::any(0); });
  EXPECT_EQ(cluster.available_resources().gpus, 1);
  ActorHandle b = spawn_actor(cluster, Resources{1, 1},
                              [] { return std::any(0); });
  EXPECT_EQ(cluster.available_resources().gpus, 0);
  a.kill();
  EXPECT_EQ(cluster.available_resources().gpus, 1);
  b.kill();
  EXPECT_EQ(cluster.available_resources().gpus, 2);
}

TEST(ActorTest, CreationBlocksUntilResourcesFree) {
  RayLite cluster(Resources{1, 2}, 2);
  ActorHandle first = spawn_actor(cluster, Resources{1, 1},
                                  [] { return std::any(0); });
  std::atomic<bool> second_created{false};
  std::thread spawner([&] {
    ActorHandle second = spawn_actor(cluster, Resources{1, 1},
                                     [] { return std::any(0); });
    second_created.store(true);
    second.kill();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_created.load());  // still waiting on the GPU
  first.kill();
  spawner.join();
  EXPECT_TRUE(second_created.load());
}

TEST(ActorTest, MethodExceptionsPropagate) {
  RayLite cluster(Resources{0, 1}, 1);
  ActorHandle actor = spawn_actor(cluster, Resources{0, 0},
                                  [] { return std::any(0); });
  Future bad = actor.call([](std::any&) -> std::any {
    throw IoError("actor method failed");
  });
  EXPECT_THROW(bad.get(), IoError);
  // The actor survives and keeps serving.
  Future ok = actor.call([](std::any& s) {
    return std::any(std::any_cast<int&>(s) + 41);
  });
  EXPECT_EQ(std::any_cast<int>(ok.get()), 41);
}

TEST(ActorTest, KillIsIdempotentAndRejectsFurtherCalls) {
  RayLite cluster(Resources{0, 1}, 1);
  ActorHandle actor = spawn_actor(cluster, Resources{0, 1},
                                  [] { return std::any(0); });
  actor.kill();
  actor.kill();
  EXPECT_THROW(actor.call([](std::any&) { return std::any{}; }),
               InvalidArgument);
  EXPECT_EQ(cluster.available_resources().cpus, 1);
}

TEST(ActorTest, InvalidHandleRejected) {
  ActorHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.call([](std::any&) { return std::any{}; }),
               InvalidArgument);
}

struct Accumulator {
  explicit Accumulator(double start) : total(start) {}
  double add(double x) { return total += x; }
  double total;
};

TEST(TypedActorTest, TypedInterface) {
  RayLite cluster(Resources{0, 2}, 2);
  TypedActorHandle<Accumulator, double> acc(cluster, Resources{0, 1}, 10.0);
  Future f1 = acc.call([](Accumulator& a) { return a.add(5.0); });
  EXPECT_DOUBLE_EQ(std::any_cast<double>(f1.get()), 15.0);
  // void-returning methods are fine too.
  Future f2 = acc.call([](Accumulator& a) { a.add(1.0); });
  (void)f2.get();
  Future f3 = acc.call([](Accumulator& a) { return a.total; });
  EXPECT_DOUBLE_EQ(std::any_cast<double>(f3.get()), 16.0);
  acc.kill();
}

class ActorFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { common::FaultInjector::instance().reset(); }
  void TearDown() override { common::FaultInjector::instance().reset(); }
};

TEST_F(ActorFaultTest, InjectedCrashPropagatesWithoutWedgingQueue) {
  auto& faults = common::FaultInjector::instance();
  RayLite cluster(Resources{0, 1}, 1);
  ActorHandle actor = spawn_actor(cluster, Resources{0, 0},
                                  [] { return std::any(int{0}); });
  // Queue three increments, then arm the injector to kill the second.
  faults.arm_nth_call("raylite.actor.method", 2);
  std::vector<Future> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(actor.call([](std::any& s) {
      return std::any(++std::any_cast<int&>(s));
    }));
  }
  EXPECT_EQ(std::any_cast<int>(futures[0].get()), 1);
  EXPECT_THROW(futures[1].get(), common::FaultInjected);
  // The crashed call never mutated state and the queue kept draining.
  EXPECT_EQ(std::any_cast<int>(futures[2].get()), 2);
}

TEST_F(ActorFaultTest, KilledActorReturnsResourcesAfterCrashes) {
  auto& faults = common::FaultInjector::instance();
  RayLite cluster(Resources{2, 4}, 2);
  ActorHandle actor = spawn_actor(cluster, Resources{1, 2},
                                  [] { return std::any(int{0}); });
  EXPECT_EQ(cluster.available_resources().gpus, 1);
  EXPECT_EQ(cluster.available_resources().cpus, 2);

  faults.arm_every_n("raylite.actor.method", 1);  // every call crashes
  for (int i = 0; i < 3; ++i) {
    Future f = actor.call([](std::any&) { return std::any{}; });
    EXPECT_THROW(f.get(), common::FaultInjected);
  }
  actor.kill();
  // The full reservation returns to the pool despite the crash storm.
  EXPECT_EQ(cluster.available_resources().gpus, 2);
  EXPECT_EQ(cluster.available_resources().cpus, 4);
  // And the pool is reusable for a fresh actor.
  faults.reset();
  ActorHandle next = spawn_actor(cluster, Resources{2, 4},
                                 [] { return std::any(int{7}); });
  Future ok = next.call(
      [](std::any& s) { return std::any(std::any_cast<int&>(s)); });
  EXPECT_EQ(std::any_cast<int>(ok.get()), 7);
  next.kill();
}

// The Ray.SGD shape: N replica-trainer actors stepping in lockstep,
// coordinated by futures.
TEST(ActorTest, ReplicaTrainerPattern) {
  RayLite cluster(Resources{4, 4}, 4);
  std::vector<ActorHandle> replicas;
  for (int r = 0; r < 4; ++r) {
    replicas.push_back(spawn_actor(cluster, Resources{1, 1}, [r] {
      return std::any(double{static_cast<double>(r)});
    }));
  }
  for (int step = 0; step < 3; ++step) {
    std::vector<Future> futures;
    for (auto& rep : replicas) {
      futures.push_back(rep.call([](std::any& s) {
        auto& w = std::any_cast<double&>(s);
        w += 1.0;  // "one training step"
        return std::any(w);
      }));
    }
    double sum = 0.0;
    for (auto& f : futures) sum += std::any_cast<double>(f.get());
    EXPECT_DOUBLE_EQ(sum, (0 + 1 + 2 + 3) + 4.0 * (step + 1));
  }
  for (auto& rep : replicas) rep.kill();
}

}  // namespace
}  // namespace dmis::ray
