#include "raylite/object_store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace dmis::ray {
namespace {

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store;
  const ObjectRef ref = store.put(std::string("hello"));
  EXPECT_TRUE(ref.valid());
  auto value = store.get_as<std::string>(ref);
  EXPECT_EQ(*value, "hello");
  EXPECT_EQ(store.size(), 1U);
}

TEST(ObjectStoreTest, DefaultRefInvalid) {
  ObjectRef ref;
  EXPECT_FALSE(ref.valid());
  ObjectStore store;
  EXPECT_THROW(store.get(ref), InvalidArgument);
}

TEST(ObjectStoreTest, GetUnknownThrows) {
  ObjectStore store;
  const ObjectRef ref = store.put(1);
  store.del(ref);
  EXPECT_THROW(store.get(ref), InvalidArgument);
  EXPECT_EQ(store.size(), 0U);
}

TEST(ObjectStoreTest, DelIsIdempotent) {
  ObjectStore store;
  const ObjectRef ref = store.put(1);
  store.del(ref);
  EXPECT_NO_THROW(store.del(ref));
}

TEST(ObjectStoreTest, TypedGetRejectsWrongType) {
  ObjectStore store;
  const ObjectRef ref = store.put(std::string("x"));
  EXPECT_THROW(store.get_as<int>(ref), InvalidArgument);
}

TEST(ObjectStoreTest, ReadersSurviveDeletion) {
  ObjectStore store;
  const ObjectRef ref = store.put(std::vector<int>{1, 2, 3});
  auto held = store.get_as<std::vector<int>>(ref);
  store.del(ref);
  EXPECT_EQ(held->size(), 3U);
  EXPECT_EQ((*held)[2], 3);
}

TEST(ObjectStoreTest, RefsAreUniqueAndOrdered) {
  ObjectStore store;
  const ObjectRef a = store.put(1);
  const ObjectRef b = store.put(2);
  EXPECT_NE(a.id(), b.id());
  EXPECT_TRUE(a < b);
}

TEST(ObjectStoreTest, ConcurrentPutsAndGets) {
  ObjectStore store;
  std::vector<std::thread> threads;
  std::vector<std::vector<ObjectRef>> refs(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &refs, t] {
      for (int i = 0; i < 100; ++i) {
        refs[static_cast<size_t>(t)].push_back(store.put(t * 1000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), 400U);
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 100; ++i) {
      const auto v = store.get_as<int>(refs[static_cast<size_t>(t)]
                                           [static_cast<size_t>(i)]);
      EXPECT_EQ(*v, t * 1000 + i);
    }
  }
}

}  // namespace
}  // namespace dmis::ray
