#include "raylite/raylite.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/check.hpp"

namespace dmis::ray {
namespace {

TEST(RayLiteTest, ExecutesTask) {
  RayLite cluster(Resources{0, 4}, 2);
  Future f = cluster.submit(Resources{0, 1}, [] { return std::any(42); });
  EXPECT_EQ(std::any_cast<int>(f.get()), 42);
  EXPECT_TRUE(f.ready());
}

TEST(RayLiteTest, PropagatesExceptions) {
  RayLite cluster(Resources{0, 1}, 1);
  Future f = cluster.submit(Resources{0, 1}, []() -> std::any {
    throw IoError("task blew up");
  });
  EXPECT_THROW(f.get(), IoError);
}

TEST(RayLiteTest, RejectsImpossibleRequest) {
  RayLite cluster(Resources{2, 4}, 2);
  EXPECT_THROW(cluster.submit(Resources{3, 1}, [] { return std::any{}; }),
               InvalidArgument);
}

TEST(RayLiteTest, GpuPoolLimitsConcurrency) {
  // 2 GPUs, 4 workers: at most 2 gpu-tasks may overlap.
  RayLite cluster(Resources{2, 8}, 4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<Future> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(cluster.submit(Resources{1, 1}, [&]() -> std::any {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      running.fetch_sub(1);
      return {};
    }));
  }
  for (auto& f : futures) (void)f.get();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(cluster.tasks_completed(), 8);
}

TEST(RayLiteTest, ResourcesReleasedAfterCompletion) {
  RayLite cluster(Resources{2, 2}, 2);
  Future f = cluster.submit(Resources{2, 2}, [] { return std::any{}; });
  (void)f.get();
  // Poll briefly: release happens just before the future resolves.
  for (int i = 0; i < 100; ++i) {
    const Resources avail = cluster.available_resources();
    if (avail.gpus == 2 && avail.cpus == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Resources avail = cluster.available_resources();
  EXPECT_EQ(avail.gpus, 2);
  EXPECT_EQ(avail.cpus, 2);
}

TEST(RayLiteTest, SmallTaskOvertakesUnplaceableLarge) {
  // 1 GPU total. A long gpu:1 task runs; a second gpu:1 task queues;
  // a gpu:0 task must not be blocked behind it.
  RayLite cluster(Resources{1, 4}, 3);
  std::atomic<bool> small_done{false};

  std::mutex m;
  std::condition_variable cv;
  bool release = false;

  Future big1 = cluster.submit(Resources{1, 1}, [&]() -> std::any {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
    return {};
  });
  Future big2 = cluster.submit(Resources{1, 1}, [] { return std::any{}; });
  Future small = cluster.submit(Resources{0, 1}, [&]() -> std::any {
    small_done.store(true);
    return {};
  });

  (void)small.get();
  EXPECT_TRUE(small_done.load());
  EXPECT_FALSE(big2.ready());  // still waiting on the GPU
  {
    const std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  (void)big1.get();
  (void)big2.get();
}

TEST(RayLiteTest, ManyTasksAllComplete) {
  RayLite cluster(Resources{4, 16}, 8);
  std::atomic<int> sum{0};
  std::vector<Future> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(cluster.submit(Resources{0, 1}, [&sum, i]() -> std::any {
      sum.fetch_add(i);
      return {};
    }));
  }
  for (auto& f : futures) (void)f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(RayLiteTest, RejectsBadConstruction) {
  EXPECT_THROW(RayLite(Resources{-1, 1}, 1), InvalidArgument);
  EXPECT_THROW(RayLite(Resources{1, 1}, 0), InvalidArgument);
}

}  // namespace
}  // namespace dmis::ray
