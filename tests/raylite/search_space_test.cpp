#include "raylite/search_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace dmis::ray {
namespace {

TEST(ParamSetTest, TypedGetters) {
  ParamSet p{{"lr", 1e-4},
             {"bf", int64_t{8}},
             {"loss", std::string("dice")},
             {"augment", true}};
  EXPECT_DOUBLE_EQ(param_double(p, "lr"), 1e-4);
  EXPECT_EQ(param_int(p, "bf"), 8);
  EXPECT_EQ(param_str(p, "loss"), "dice");
  EXPECT_TRUE(param_bool(p, "augment"));
  // int promotes to double.
  EXPECT_DOUBLE_EQ(param_double(p, "bf"), 8.0);
  EXPECT_THROW(param_int(p, "lr"), InvalidArgument);
  EXPECT_THROW(param_str(p, "missing"), InvalidArgument);
}

TEST(ParamSetTest, StrRendering) {
  ParamSet p{{"a", int64_t{1}}, {"b", std::string("x")}};
  EXPECT_EQ(param_set_str(p), "a=1, b=x");
}

TEST(SearchSpaceTest, GridIsCrossProduct) {
  SearchSpace space;
  space.choice("lr", {1e-3, 1e-4, 1e-5, 1e-6})
      .choice("loss", {std::string("dice"), std::string("qdice")})
      .choice("bf", {int64_t{8}, int64_t{16}})
      .choice("augment", {false, true});
  EXPECT_EQ(space.grid_size(), 32);
  const auto grid = space.grid();
  ASSERT_EQ(grid.size(), 32U);
  // All points distinct.
  std::set<std::string> rendered;
  for (const auto& p : grid) rendered.insert(param_set_str(p));
  EXPECT_EQ(rendered.size(), 32U);
  // Every point has all four keys.
  for (const auto& p : grid) EXPECT_EQ(p.size(), 4U);
}

TEST(SearchSpaceTest, GridOrderIsDeterministic) {
  SearchSpace space;
  space.choice("a", {int64_t{1}, int64_t{2}})
      .choice("b", {std::string("x"), std::string("y")});
  const auto grid = space.grid();
  ASSERT_EQ(grid.size(), 4U);
  EXPECT_EQ(param_set_str(grid[0]), "a=1, b=x");
  EXPECT_EQ(param_set_str(grid[1]), "a=1, b=y");
  EXPECT_EQ(param_set_str(grid[2]), "a=2, b=x");
  EXPECT_EQ(param_set_str(grid[3]), "a=2, b=y");
}

TEST(SearchSpaceTest, GridRejectsContinuous) {
  SearchSpace space;
  space.choice("a", {int64_t{1}}).uniform("u", 0.0, 1.0);
  EXPECT_THROW(space.grid(), InvalidArgument);
}

TEST(SearchSpaceTest, SampleDrawsFromRanges) {
  SearchSpace space;
  space.choice("bf", {int64_t{8}, int64_t{16}})
      .uniform("dropout", 0.1, 0.5)
      .loguniform("lr", 1e-6, 1e-3);
  const auto samples = space.sample(200, 7);
  ASSERT_EQ(samples.size(), 200U);
  int bf8 = 0;
  for (const auto& p : samples) {
    const int64_t bf = param_int(p, "bf");
    EXPECT_TRUE(bf == 8 || bf == 16);
    bf8 += bf == 8;
    const double d = param_double(p, "dropout");
    EXPECT_GE(d, 0.1);
    EXPECT_LE(d, 0.5);
    const double lr = param_double(p, "lr");
    EXPECT_GE(lr, 1e-6);
    EXPECT_LE(lr, 1e-3);
  }
  EXPECT_GT(bf8, 60);   // both options actually drawn
  EXPECT_LT(bf8, 140);
}

TEST(SearchSpaceTest, LoguniformCoversDecades) {
  SearchSpace space;
  space.loguniform("lr", 1e-6, 1e-3);
  const auto samples = space.sample(500, 11);
  int tiny = 0;
  for (const auto& p : samples) {
    if (param_double(p, "lr") < 1e-5) ++tiny;
  }
  // Log-uniform: ~1/3 of draws per decade; uniform would give ~1%.
  EXPECT_GT(tiny, 100);
}

TEST(SearchSpaceTest, SampleDeterministicPerSeed) {
  SearchSpace space;
  space.uniform("x", 0.0, 1.0);
  const auto a = space.sample(5, 3);
  const auto b = space.sample(5, 3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(param_double(a[static_cast<size_t>(i)], "x"),
                     param_double(b[static_cast<size_t>(i)], "x"));
  }
}

TEST(SearchSpaceTest, RejectsBadDefinitions) {
  SearchSpace space;
  space.choice("a", {int64_t{1}});
  EXPECT_THROW(space.choice("a", {int64_t{2}}), InvalidArgument);
  EXPECT_THROW(space.choice("empty", {}), InvalidArgument);
  EXPECT_THROW(space.uniform("u", 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(space.loguniform("l", 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(space.sample(0, 1), InvalidArgument);
}

}  // namespace
}  // namespace dmis::ray
