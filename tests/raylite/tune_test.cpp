#include "raylite/tune.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "raylite/sweep_ledger.hpp"

namespace dmis::ray {
namespace {

// A synthetic trainable whose final metric is a known function of its
// hyper-parameters: val_dice = 1 - |log10(lr) + 4| / 10 (best at 1e-4).
void synthetic_trainable(const ParamSet& params, Reporter& reporter) {
  const double lr = param_double(params, "lr");
  const double final_dice = 1.0 - std::fabs(std::log10(lr) + 4.0) / 10.0;
  for (int64_t epoch = 0; epoch < 5; ++epoch) {
    if (reporter.should_stop()) return;
    const double dice =
        final_dice * (static_cast<double>(epoch + 1) / 5.0);
    reporter.report(epoch, {{"val_dice", dice}, {"loss", 1.0 - dice}});
  }
}

std::vector<ParamSet> lr_grid() {
  SearchSpace space;
  space.choice("lr", {1e-3, 1e-4, 1e-5, 1e-6});
  return space.grid();
}

TEST(TuneTest, RunsAllTrialsToTermination) {
  TuneOptions opts;
  opts.num_gpus = 2;
  const TuneResult result = tune_run(synthetic_trainable, lr_grid(), opts);
  ASSERT_EQ(result.trials.size(), 4U);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  for (const Trial& t : result.trials) {
    EXPECT_EQ(t.iterations, 5);
    EXPECT_TRUE(t.last_metrics.count("val_dice"));
  }
}

TEST(TuneTest, BestPicksKnownOptimum) {
  TuneOptions opts;
  opts.num_gpus = 4;
  const TuneResult result = tune_run(synthetic_trainable, lr_grid(), opts);
  const Trial& best = result.best("val_dice");
  EXPECT_DOUBLE_EQ(param_double(best.params, "lr"), 1e-4);
  // Minimize mode picks the worst lr's loss... i.e. best (lowest) loss
  // is still the lr=1e-4 trial.
  const Trial& best_loss = result.best("loss", /*maximize=*/false);
  EXPECT_DOUBLE_EQ(param_double(best_loss.params, "lr"), 1e-4);
}

TEST(TuneTest, TrialErrorsAreCapturedNotFatal) {
  const auto flaky = [](const ParamSet& params, Reporter& reporter) {
    if (param_double(params, "lr") > 5e-4) {
      throw IoError("simulated NaN loss");
    }
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  const TuneResult result = tune_run(flaky, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kError), 1);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 3);
  for (const Trial& t : result.trials) {
    if (t.status == TrialStatus::kError) {
      EXPECT_NE(t.error.find("NaN"), std::string::npos);
    }
  }
}

TEST(TuneTest, ConcurrencyBoundedByGpuPool) {
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  const auto trainable = [&](const ParamSet&, Reporter& reporter) {
    const int now = running.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    running.fetch_sub(1);
    reporter.report(0, {{"val_dice", 0.1}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  SearchSpace space;
  space.choice("i", {int64_t{0}, int64_t{1}, int64_t{2}, int64_t{3},
                     int64_t{4}, int64_t{5}, int64_t{6}, int64_t{7}});
  const TuneResult result = tune_run(trainable, space.grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 8);
  EXPECT_LE(peak.load(), 2);
}

TEST(TuneTest, AshaStopsLowPerformersEarly) {
  // Trials with monotone metric proportional to their "quality" q; ASHA
  // at eta=2 should stop roughly half at each rung.
  const auto trainable = [](const ParamSet& params, Reporter& reporter) {
    const double q = param_double(params, "q");
    for (int64_t epoch = 0; epoch < 8; ++epoch) {
      if (reporter.should_stop()) return;
      reporter.report(epoch, {{"val_dice", q * (1.0 + 0.01 * epoch)}});
    }
  };
  SearchSpace space;
  std::vector<ParamValue> qs;
  for (int i = 8; i >= 1; --i) qs.push_back(0.1 * i);
  space.choice("q", qs);

  TuneOptions opts;
  opts.num_gpus = 1;  // serial: deterministic rung populations
  AshaOptions asha;
  asha.metric = "val_dice";
  asha.grace_period = 2;
  asha.reduction_factor = 2;
  opts.asha = asha;

  const TuneResult result = tune_run(trainable, space.grid(), opts);
  const int64_t stopped = result.count(TrialStatus::kStopped);
  const int64_t full = result.count(TrialStatus::kTerminated);
  EXPECT_EQ(stopped + full, 8);
  EXPECT_GT(stopped, 0);      // some early stopping happened
  EXPECT_GT(full, 0);         // the best survived
  // The best trial must run to completion.
  const Trial& best = result.best("val_dice");
  EXPECT_EQ(best.iterations, 8);
  // Early-stopped trials did fewer iterations.
  for (const Trial& t : result.trials) {
    if (t.status == TrialStatus::kStopped) EXPECT_LT(t.iterations, 8);
  }
}

TEST(TuneTest, AshaSavesTotalIterations) {
  std::atomic<int64_t> total_epochs{0};
  const auto trainable = [&](const ParamSet& params, Reporter& reporter) {
    const double q = param_double(params, "q");
    for (int64_t epoch = 0; epoch < 16; ++epoch) {
      if (reporter.should_stop()) return;
      total_epochs.fetch_add(1);
      reporter.report(epoch, {{"val_dice", q}});
    }
  };
  SearchSpace space;
  std::vector<ParamValue> qs;
  for (int i = 8; i >= 1; --i) qs.push_back(0.1 * i);
  space.choice("q", qs);

  TuneOptions fifo;
  fifo.num_gpus = 1;
  const TuneResult full = tune_run(trainable, space.grid(), fifo);
  const int64_t full_epochs = total_epochs.exchange(0);

  TuneOptions opts = fifo;
  AshaOptions asha;
  asha.grace_period = 2;
  opts.asha = asha;
  const TuneResult pruned = tune_run(trainable, space.grid(), opts);
  const int64_t pruned_epochs = total_epochs.load();

  EXPECT_EQ(full.count(TrialStatus::kTerminated), 8);
  EXPECT_LT(pruned_epochs, full_epochs / 2);  // substantial savings
  // And the optimum is preserved.
  EXPECT_DOUBLE_EQ(param_double(pruned.best("val_dice").params, "q"), 0.8);
}

TEST(TuneTest, RejectsBadArguments) {
  TuneOptions opts;
  EXPECT_THROW(tune_run(nullptr, lr_grid(), opts), InvalidArgument);
  EXPECT_THROW(tune_run(synthetic_trainable, {}, opts), InvalidArgument);
  opts.num_gpus = 0;
  EXPECT_THROW(tune_run(synthetic_trainable, lr_grid(), opts),
               InvalidArgument);
}

TEST(TuneTest, BestThrowsWhenNoTrialReportedMetric) {
  const auto silent = [](const ParamSet&, Reporter&) {};
  TuneOptions opts;
  const TuneResult result = tune_run(silent, lr_grid(), opts);
  EXPECT_THROW(result.best("val_dice"), InvalidArgument);
}

TEST(TrialStatusTest, Names) {
  EXPECT_STREQ(trial_status_name(TrialStatus::kPending), "PENDING");
  EXPECT_STREQ(trial_status_name(TrialStatus::kRunning), "RUNNING");
  EXPECT_STREQ(trial_status_name(TrialStatus::kTerminated), "TERMINATED");
  EXPECT_STREQ(trial_status_name(TrialStatus::kStopped), "STOPPED");
  EXPECT_STREQ(trial_status_name(TrialStatus::kError), "ERROR");
  EXPECT_STREQ(trial_status_name(TrialStatus::kFailed), "FAILED");
}

class TuneRetryTest : public ::testing::Test {
 protected:
  void SetUp() override { common::FaultInjector::instance().reset(); }
  void TearDown() override { common::FaultInjector::instance().reset(); }
};

TEST_F(TuneRetryTest, TransientFailureIsRetriedToSuccess) {
  // Each trial throws on its first attempt, succeeds on the second.
  std::mutex mu;
  std::map<double, int> attempts_by_lr;
  const auto flaky_once = [&](const ParamSet& params, Reporter& reporter) {
    const double lr = param_double(params, "lr");
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (++attempts_by_lr[lr] == 1) throw IoError("transient NaN");
    }
    reporter.report(0, {{"val_dice", lr}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 2;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  const TuneResult result = tune_run(flaky_once, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  EXPECT_EQ(result.count(TrialStatus::kError), 0);
  EXPECT_EQ(result.count(TrialStatus::kFailed), 0);
  EXPECT_EQ(result.transient_failures(), 4);
  for (const Trial& t : result.trials) {
    EXPECT_EQ(t.attempts, 2);
    ASSERT_EQ(t.transient_errors.size(), 1U);
    EXPECT_NE(t.transient_errors[0].find("NaN"), std::string::npos);
    EXPECT_TRUE(t.error.empty());
  }
}

TEST_F(TuneRetryTest, ExhaustedRetriesLandInFailedNotError) {
  const auto always_broken = [](const ParamSet& params, Reporter& reporter) {
    if (param_double(params, "lr") > 5e-4) throw IoError("persistent crash");
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 2;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  const TuneResult result = tune_run(always_broken, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kFailed), 1);
  EXPECT_EQ(result.count(TrialStatus::kError), 0);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 3);
  for (const Trial& t : result.trials) {
    if (t.status != TrialStatus::kFailed) continue;
    EXPECT_EQ(t.attempts, 3);  // 1 initial + 2 retries
    EXPECT_EQ(t.transient_errors.size(), 2U);
    EXPECT_NE(t.error.find("persistent"), std::string::npos);
  }
  // The sweep still selects a best among the healthy trials.
  EXPECT_NO_THROW(result.best("val_dice"));
}

TEST_F(TuneRetryTest, WorkerLevelCrashIsRetriedToo) {
  // Kill the task at the RayLite worker layer (before the trainable
  // even runs) — the injected preemption case.
  common::FaultInjector::instance().arm_nth_call("raylite.task", 2);
  TuneOptions opts;
  opts.num_gpus = 1;  // serial: deterministic victim
  opts.retry.max_retries = 1;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  const TuneResult result = tune_run(synthetic_trainable, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  EXPECT_EQ(result.transient_failures(), 1);
  bool saw_injected = false;
  for (const Trial& t : result.trials) {
    for (const std::string& e : t.transient_errors) {
      saw_injected = saw_injected ||
                     e.find("injected fault") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_injected);
}

TEST_F(TuneRetryTest, RetryAttemptSeesPriorProgress) {
  // A trial that dies mid-training must see, on retry, the iteration it
  // had durably reported — the hook the checkpoint-resume path uses.
  std::mutex mu;
  std::map<double, std::vector<int64_t>> starts_by_lr;
  const auto dies_midway = [&](const ParamSet& params, Reporter& reporter) {
    const double lr = param_double(params, "lr");
    bool first_attempt = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      auto& starts = starts_by_lr[lr];
      first_attempt = starts.empty();
      starts.push_back(reporter.start_iteration());
    }
    for (int64_t it = reporter.start_iteration(); it < 4; ++it) {
      reporter.report(it, {{"val_dice", 0.1 * static_cast<double>(it + 1)}});
      if (first_attempt && it == 1) throw IoError("died after iteration 1");
    }
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 1;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  const TuneResult result = tune_run(dies_midway, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  for (const auto& [lr, starts] : starts_by_lr) {
    ASSERT_EQ(starts.size(), 2U) << "lr=" << lr;
    EXPECT_EQ(starts[0], 0);
    EXPECT_EQ(starts[1], 2);  // resumed after the last reported iteration
  }
  for (const Trial& t : result.trials) EXPECT_EQ(t.iterations, 4);
}

TEST_F(TuneRetryTest, CheckpointDirsAreCreatedPerTrial) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("dmis_tune_ckpt_" + std::to_string(::getpid())))
          .string();
  std::mutex mu;
  std::vector<std::string> seen_dirs;
  const auto trainable = [&](const ParamSet&, Reporter& reporter) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      seen_dirs.push_back(reporter.checkpoint_dir());
    }
    EXPECT_TRUE(std::filesystem::is_directory(reporter.checkpoint_dir()));
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.checkpoint_root = root;
  const TuneResult result = tune_run(trainable, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  std::sort(seen_dirs.begin(), seen_dirs.end());
  EXPECT_EQ(seen_dirs.size(), 4U);
  EXPECT_EQ(std::unique(seen_dirs.begin(), seen_dirs.end()),
            seen_dirs.end());  // one distinct dir per trial
  for (const Trial& t : result.trials) {
    EXPECT_EQ(t.checkpoint_dir, root + "/trial_" + std::to_string(t.id));
  }
  std::filesystem::remove_all(root);
}

TEST_F(TuneRetryTest, RejectsBadRetryPolicy) {
  TuneOptions opts;
  opts.retry.max_retries = -1;
  EXPECT_THROW(tune_run(synthetic_trainable, lr_grid(), opts),
               InvalidArgument);
  opts.retry.max_retries = 0;
  opts.retry.backoff_base = -0.1;
  EXPECT_THROW(tune_run(synthetic_trainable, lr_grid(), opts),
               InvalidArgument);
  opts.retry.backoff_base = 0.05;
  opts.retry.jitter = 1.5;
  EXPECT_THROW(tune_run(synthetic_trainable, lr_grid(), opts),
               InvalidArgument);
  opts.retry.jitter = -0.1;
  EXPECT_THROW(tune_run(synthetic_trainable, lr_grid(), opts),
               InvalidArgument);
}

// A comm timeout or peer failure inside a trial's data-parallel group
// is transient — a slow or dead rank, not a bad configuration — so the
// trial is rescheduled and can succeed on retry.
TEST_F(TuneRetryTest, CommTimeoutAndPeerFailureAreTransient) {
  std::mutex mu;
  std::map<double, int> attempts_by_lr;
  const auto flaky_comm = [&](const ParamSet& params, Reporter& reporter) {
    const double lr = param_double(params, "lr");
    int attempt = 0;
    {
      const std::lock_guard<std::mutex> lock(mu);
      attempt = ++attempts_by_lr[lr];
    }
    if (attempt == 1) {
      if (lr > 5e-4) {
        throw comm::CommError(comm::CommErrorKind::kTimeout,
                              "collective deadline expired on rank 1");
      }
      throw comm::CommError(comm::CommErrorKind::kPeerFailed,
                            "rank 2 failed: simulated crash");
    }
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 2;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  const TuneResult result = tune_run(flaky_comm, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  EXPECT_EQ(result.count(TrialStatus::kFailed), 0);
  for (const Trial& t : result.trials) {
    EXPECT_EQ(t.attempts, 2);
    EXPECT_FALSE(t.permanent_error);
    ASSERT_EQ(t.transient_errors.size(), 1U);
  }
}

// An aborted comm group was killed deliberately: retrying cannot help,
// so the trial lands in kFailed immediately without burning retries.
TEST_F(TuneRetryTest, CommAbortIsPermanent) {
  std::atomic<int> calls{0};
  const auto aborted = [&](const ParamSet&, Reporter&) {
    calls.fetch_add(1);
    throw comm::CommError(comm::CommErrorKind::kAborted,
                          "rank 0 fenced out of the group");
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 3;
  opts.retry.backoff_base = 0.001;
  const TuneResult result = tune_run(aborted, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kFailed), 4);
  EXPECT_EQ(calls.load(), 4);  // one attempt each, never retried
  for (const Trial& t : result.trials) {
    EXPECT_EQ(t.attempts, 1);
    EXPECT_TRUE(t.permanent_error);
    EXPECT_TRUE(t.transient_errors.empty());
    EXPECT_NE(t.error.find("fenced"), std::string::npos);
  }
}

// A bad configuration stays bad: InvalidArgument is permanent too.
TEST_F(TuneRetryTest, InvalidConfigIsPermanent) {
  const auto bad_config = [](const ParamSet& params, Reporter& reporter) {
    if (param_double(params, "lr") > 5e-4) {
      throw InvalidArgument("negative filter count");
    }
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 2;
  opts.retry.backoff_base = 0.001;
  const TuneResult result = tune_run(bad_config, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kFailed), 1);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 3);
  for (const Trial& t : result.trials) {
    if (t.status != TrialStatus::kFailed) continue;
    EXPECT_EQ(t.attempts, 1);
    EXPECT_TRUE(t.permanent_error);
  }
}

// Jitter extremes must keep the backoff path functional (the delay can
// shrink to near zero but never goes negative or hangs).
TEST_F(TuneRetryTest, FullJitterStillRetriesToSuccess) {
  std::mutex mu;
  std::map<double, int> attempts_by_lr;
  const auto flaky_once = [&](const ParamSet& params, Reporter& reporter) {
    const double lr = param_double(params, "lr");
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (++attempts_by_lr[lr] == 1) throw IoError("transient");
    }
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.retry.max_retries = 1;
  opts.retry.backoff_base = 0.001;
  opts.retry.backoff_cap = 0.01;
  opts.retry.jitter = 1.0;
  const TuneResult result = tune_run(flaky_once, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  EXPECT_EQ(result.transient_failures(), 4);
}

// Leftover *.tmp files from a crashed checkpoint save must be swept
// when the trial directory is (re)created, so a resuming attempt can
// never mistake a torn temp file for progress.
TEST_F(TuneRetryTest, StaleTmpFilesSweptFromTrialDirs) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("dmis_tune_sweep_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(root + "/trial_0");
  {
    std::ofstream stale(root + "/trial_0/model.ckpt.tmp");
    stale << "torn write";
    std::ofstream keep(root + "/trial_0/model.ckpt");
    keep << "real checkpoint";
  }
  const auto trainable = [](const ParamSet&, Reporter& reporter) {
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.checkpoint_root = root;
  const TuneResult result = tune_run(trainable, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  EXPECT_FALSE(std::filesystem::exists(root + "/trial_0/model.ckpt.tmp"));
  EXPECT_TRUE(std::filesystem::exists(root + "/trial_0/model.ckpt"));
  std::filesystem::remove_all(root);
}

// ---- Sweep ledger: durable completed-trial record + restart adoption.

std::string fresh_root(const char* tag) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       (std::string("dmis_sweep_") + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);
  return root;
}

TEST(SweepLedgerTest, EncodeDecodeRoundTrips) {
  LedgerEntry e;
  e.id = 7;
  e.status = "TERMINATED";
  e.iterations = 12;
  e.params = "loss=\"di\\ce\", lr=0.0003";  // quote + backslash survive
  e.metrics = {{"val_dice", 0.8125}, {"loss", 1e-9}};
  LedgerEntry back;
  ASSERT_TRUE(SweepLedger::decode(SweepLedger::encode(e), &back));
  EXPECT_EQ(back.id, e.id);
  EXPECT_EQ(back.status, e.status);
  EXPECT_EQ(back.iterations, e.iterations);
  EXPECT_EQ(back.params, e.params);
  ASSERT_EQ(back.metrics.size(), 2U);
  EXPECT_DOUBLE_EQ(back.metrics.at("val_dice"), 0.8125);
  EXPECT_DOUBLE_EQ(back.metrics.at("loss"), 1e-9);
}

TEST(SweepLedgerTest, CorruptLinesAreDetectedAndDropped) {
  LedgerEntry e;
  e.id = 1;
  e.status = "TERMINATED";
  e.iterations = 3;
  e.params = "lr=0.001";
  e.metrics = {{"score", 0.5}};
  std::string line = SweepLedger::encode(e);
  LedgerEntry out;
  ASSERT_TRUE(SweepLedger::decode(line, &out));
  // Any payload flip breaks the CRC.
  std::string torn = line;
  torn[torn.find("\"iterations\":3") + 13] = '9';
  EXPECT_FALSE(SweepLedger::decode(torn, &out));
  EXPECT_FALSE(SweepLedger::decode("not json at all", &out));
  EXPECT_FALSE(SweepLedger::decode(line.substr(0, line.size() / 2), &out));

  // A ledger file mixing good and torn lines keeps only the good one.
  const std::string root = fresh_root("corrupt");
  std::filesystem::create_directories(root);
  const std::string path = root + "/sweep_ledger.jsonl";
  {
    std::ofstream os(path);
    os << line << "\n" << torn << "\ngarbage\n";
  }
  SweepLedger ledger(path);
  ASSERT_EQ(ledger.entries().size(), 1U);
  EXPECT_EQ(ledger.entries()[0].id, 1);
  std::filesystem::remove_all(root);
}

TEST(SweepLedgerTest, RecordPersistsAndUpserts) {
  const std::string root = fresh_root("record");
  std::filesystem::create_directories(root);
  const std::string path = root + "/sweep_ledger.jsonl";
  {
    SweepLedger ledger(path);
    LedgerEntry e;
    e.id = 0;
    e.status = "TERMINATED";
    e.iterations = 2;
    e.params = "lr=0.001";
    ledger.record(e);
    e.id = 1;
    e.status = "STOPPED";
    ledger.record(e);
    e.id = 0;
    e.iterations = 5;  // upsert replaces, not duplicates
    ledger.record(e);
  }
  SweepLedger reloaded(path);
  ASSERT_EQ(reloaded.entries().size(), 2U);
  const LedgerEntry* t0 = reloaded.find(0, "lr=0.001");
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(t0->iterations, 5);
  EXPECT_NE(reloaded.find(1, "lr=0.001"), nullptr);
  // A changed fingerprint is a different sweep: no adoption.
  EXPECT_EQ(reloaded.find(0, "lr=0.01"), nullptr);
  std::filesystem::remove_all(root);
}

TEST(TuneTest, CompletedTrialsLandInLedger) {
  const std::string root = fresh_root("ledger");
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.checkpoint_root = root;
  const TuneResult result = tune_run(synthetic_trainable, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  SweepLedger ledger(root + "/sweep_ledger.jsonl");
  ASSERT_EQ(ledger.entries().size(), 4U);
  for (const Trial& t : result.trials) {
    const LedgerEntry* e = ledger.find(t.id, param_set_str(t.params));
    ASSERT_NE(e, nullptr) << "trial " << t.id;
    EXPECT_EQ(e->status, "TERMINATED");
    EXPECT_EQ(e->iterations, t.iterations);
    EXPECT_DOUBLE_EQ(e->metrics.at("val_dice"),
                     t.last_metrics.at("val_dice"));
  }
  std::filesystem::remove_all(root);
}

TEST(TuneTest, RestartAdoptsCompletedTrialsWithoutRerunning) {
  const std::string root = fresh_root("resume");
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.checkpoint_root = root;
  const TuneResult first = tune_run(synthetic_trainable, lr_grid(), opts);
  EXPECT_EQ(first.count(TrialStatus::kTerminated), 4);

  // The "restarted driver": same configs, same root. The trainable now
  // counts invocations — adoption means it never runs.
  std::atomic<int> reruns{0};
  const auto counting = [&](const ParamSet& params, Reporter& reporter) {
    ++reruns;
    synthetic_trainable(params, reporter);
  };
  const TuneResult second = tune_run(counting, lr_grid(), opts);
  EXPECT_EQ(reruns.load(), 0);
  EXPECT_EQ(second.count(TrialStatus::kTerminated), 4);
  for (size_t i = 0; i < second.trials.size(); ++i) {
    EXPECT_EQ(second.trials[i].attempts, 0);  // never dispatched
    EXPECT_EQ(second.trials[i].iterations, first.trials[i].iterations);
    EXPECT_EQ(second.trials[i].last_metrics, first.trials[i].last_metrics);
  }
  // Best-trial parity across the restart.
  EXPECT_EQ(second.best("val_dice").id, first.best("val_dice").id);
  std::filesystem::remove_all(root);
}

TEST(TuneTest, ChangedConfigurationIsNotAdopted) {
  const std::string root = fresh_root("changed");
  TuneOptions opts;
  opts.num_gpus = 2;
  opts.checkpoint_root = root;
  (void)tune_run(synthetic_trainable, lr_grid(), opts);

  // Same number of trials, different hyper-parameters: the fingerprint
  // mismatch must force a re-run rather than adopting stale results.
  SearchSpace space;
  space.choice("lr", {2e-3, 2e-4, 2e-5, 2e-6});
  std::atomic<int> reruns{0};
  const auto counting = [&](const ParamSet& params, Reporter& reporter) {
    ++reruns;
    synthetic_trainable(params, reporter);
  };
  const TuneResult second = tune_run(counting, space.grid(), opts);
  EXPECT_EQ(reruns.load(), 4);
  EXPECT_EQ(second.count(TrialStatus::kTerminated), 4);
  std::filesystem::remove_all(root);
}

TEST(TuneTest, AshaStoppedTrialsAdoptedAsStopped) {
  const std::string root = fresh_root("asha");
  // Wide quality spread so ASHA reliably stops the bottom trials.
  SearchSpace space;
  space.choice("lr", {1e-4, 1e-8});
  TuneOptions opts;
  opts.num_gpus = 1;  // serial: the good trial reaches each rung first
  opts.checkpoint_root = root;
  AshaOptions asha;
  asha.metric = "val_dice";
  asha.grace_period = 1;
  asha.reduction_factor = 2;
  opts.asha = asha;
  const TuneResult first = tune_run(synthetic_trainable, space.grid(), opts);
  ASSERT_EQ(first.count(TrialStatus::kStopped), 1);

  std::atomic<int> reruns{0};
  const auto counting = [&](const ParamSet& params, Reporter& reporter) {
    ++reruns;
    synthetic_trainable(params, reporter);
  };
  const TuneResult second = tune_run(counting, space.grid(), opts);
  EXPECT_EQ(reruns.load(), 0);
  EXPECT_EQ(second.count(TrialStatus::kStopped), 1);
  EXPECT_EQ(second.count(TrialStatus::kTerminated), 1);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace dmis::ray
