#include "raylite/tune.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/check.hpp"

namespace dmis::ray {
namespace {

// A synthetic trainable whose final metric is a known function of its
// hyper-parameters: val_dice = 1 - |log10(lr) + 4| / 10 (best at 1e-4).
void synthetic_trainable(const ParamSet& params, Reporter& reporter) {
  const double lr = param_double(params, "lr");
  const double final_dice = 1.0 - std::fabs(std::log10(lr) + 4.0) / 10.0;
  for (int64_t epoch = 0; epoch < 5; ++epoch) {
    if (reporter.should_stop()) return;
    const double dice =
        final_dice * (static_cast<double>(epoch + 1) / 5.0);
    reporter.report(epoch, {{"val_dice", dice}, {"loss", 1.0 - dice}});
  }
}

std::vector<ParamSet> lr_grid() {
  SearchSpace space;
  space.choice("lr", {1e-3, 1e-4, 1e-5, 1e-6});
  return space.grid();
}

TEST(TuneTest, RunsAllTrialsToTermination) {
  TuneOptions opts;
  opts.num_gpus = 2;
  const TuneResult result = tune_run(synthetic_trainable, lr_grid(), opts);
  ASSERT_EQ(result.trials.size(), 4U);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 4);
  for (const Trial& t : result.trials) {
    EXPECT_EQ(t.iterations, 5);
    EXPECT_TRUE(t.last_metrics.count("val_dice"));
  }
}

TEST(TuneTest, BestPicksKnownOptimum) {
  TuneOptions opts;
  opts.num_gpus = 4;
  const TuneResult result = tune_run(synthetic_trainable, lr_grid(), opts);
  const Trial& best = result.best("val_dice");
  EXPECT_DOUBLE_EQ(param_double(best.params, "lr"), 1e-4);
  // Minimize mode picks the worst lr's loss... i.e. best (lowest) loss
  // is still the lr=1e-4 trial.
  const Trial& best_loss = result.best("loss", /*maximize=*/false);
  EXPECT_DOUBLE_EQ(param_double(best_loss.params, "lr"), 1e-4);
}

TEST(TuneTest, TrialErrorsAreCapturedNotFatal) {
  const auto flaky = [](const ParamSet& params, Reporter& reporter) {
    if (param_double(params, "lr") > 5e-4) {
      throw IoError("simulated NaN loss");
    }
    reporter.report(0, {{"val_dice", 0.5}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  const TuneResult result = tune_run(flaky, lr_grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kError), 1);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 3);
  for (const Trial& t : result.trials) {
    if (t.status == TrialStatus::kError) {
      EXPECT_NE(t.error.find("NaN"), std::string::npos);
    }
  }
}

TEST(TuneTest, ConcurrencyBoundedByGpuPool) {
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  const auto trainable = [&](const ParamSet&, Reporter& reporter) {
    const int now = running.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    running.fetch_sub(1);
    reporter.report(0, {{"val_dice", 0.1}});
  };
  TuneOptions opts;
  opts.num_gpus = 2;
  SearchSpace space;
  space.choice("i", {int64_t{0}, int64_t{1}, int64_t{2}, int64_t{3},
                     int64_t{4}, int64_t{5}, int64_t{6}, int64_t{7}});
  const TuneResult result = tune_run(trainable, space.grid(), opts);
  EXPECT_EQ(result.count(TrialStatus::kTerminated), 8);
  EXPECT_LE(peak.load(), 2);
}

TEST(TuneTest, AshaStopsLowPerformersEarly) {
  // Trials with monotone metric proportional to their "quality" q; ASHA
  // at eta=2 should stop roughly half at each rung.
  const auto trainable = [](const ParamSet& params, Reporter& reporter) {
    const double q = param_double(params, "q");
    for (int64_t epoch = 0; epoch < 8; ++epoch) {
      if (reporter.should_stop()) return;
      reporter.report(epoch, {{"val_dice", q * (1.0 + 0.01 * epoch)}});
    }
  };
  SearchSpace space;
  std::vector<ParamValue> qs;
  for (int i = 8; i >= 1; --i) qs.push_back(0.1 * i);
  space.choice("q", qs);

  TuneOptions opts;
  opts.num_gpus = 1;  // serial: deterministic rung populations
  AshaOptions asha;
  asha.metric = "val_dice";
  asha.grace_period = 2;
  asha.reduction_factor = 2;
  opts.asha = asha;

  const TuneResult result = tune_run(trainable, space.grid(), opts);
  const int64_t stopped = result.count(TrialStatus::kStopped);
  const int64_t full = result.count(TrialStatus::kTerminated);
  EXPECT_EQ(stopped + full, 8);
  EXPECT_GT(stopped, 0);      // some early stopping happened
  EXPECT_GT(full, 0);         // the best survived
  // The best trial must run to completion.
  const Trial& best = result.best("val_dice");
  EXPECT_EQ(best.iterations, 8);
  // Early-stopped trials did fewer iterations.
  for (const Trial& t : result.trials) {
    if (t.status == TrialStatus::kStopped) EXPECT_LT(t.iterations, 8);
  }
}

TEST(TuneTest, AshaSavesTotalIterations) {
  std::atomic<int64_t> total_epochs{0};
  const auto trainable = [&](const ParamSet& params, Reporter& reporter) {
    const double q = param_double(params, "q");
    for (int64_t epoch = 0; epoch < 16; ++epoch) {
      if (reporter.should_stop()) return;
      total_epochs.fetch_add(1);
      reporter.report(epoch, {{"val_dice", q}});
    }
  };
  SearchSpace space;
  std::vector<ParamValue> qs;
  for (int i = 8; i >= 1; --i) qs.push_back(0.1 * i);
  space.choice("q", qs);

  TuneOptions fifo;
  fifo.num_gpus = 1;
  const TuneResult full = tune_run(trainable, space.grid(), fifo);
  const int64_t full_epochs = total_epochs.exchange(0);

  TuneOptions opts = fifo;
  AshaOptions asha;
  asha.grace_period = 2;
  opts.asha = asha;
  const TuneResult pruned = tune_run(trainable, space.grid(), opts);
  const int64_t pruned_epochs = total_epochs.load();

  EXPECT_EQ(full.count(TrialStatus::kTerminated), 8);
  EXPECT_LT(pruned_epochs, full_epochs / 2);  // substantial savings
  // And the optimum is preserved.
  EXPECT_DOUBLE_EQ(param_double(pruned.best("val_dice").params, "q"), 0.8);
}

TEST(TuneTest, RejectsBadArguments) {
  TuneOptions opts;
  EXPECT_THROW(tune_run(nullptr, lr_grid(), opts), InvalidArgument);
  EXPECT_THROW(tune_run(synthetic_trainable, {}, opts), InvalidArgument);
  opts.num_gpus = 0;
  EXPECT_THROW(tune_run(synthetic_trainable, lr_grid(), opts),
               InvalidArgument);
}

TEST(TuneTest, BestThrowsWhenNoTrialReportedMetric) {
  const auto silent = [](const ParamSet&, Reporter&) {};
  TuneOptions opts;
  const TuneResult result = tune_run(silent, lr_grid(), opts);
  EXPECT_THROW(result.best("val_dice"), InvalidArgument);
}

TEST(TrialStatusTest, Names) {
  EXPECT_STREQ(trial_status_name(TrialStatus::kPending), "PENDING");
  EXPECT_STREQ(trial_status_name(TrialStatus::kRunning), "RUNNING");
  EXPECT_STREQ(trial_status_name(TrialStatus::kTerminated), "TERMINATED");
  EXPECT_STREQ(trial_status_name(TrialStatus::kStopped), "STOPPED");
  EXPECT_STREQ(trial_status_name(TrialStatus::kError), "ERROR");
}

}  // namespace
}  // namespace dmis::ray
