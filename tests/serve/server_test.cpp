#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "core/serve.hpp"
#include "data/volume.hpp"
#include "obs/metrics.hpp"
#include "tensor/rng.hpp"

namespace dmis::serve {
namespace {

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 11;
  return opts;
}

data::Volume noise_volume(uint64_t seed, int64_t d = 8, int64_t h = 8,
                          int64_t w = 8) {
  data::Volume v(1, d, h, w);
  Rng rng(seed);
  for (int64_t i = 0; i < v.tensor().numel(); ++i) {
    v.tensor()[i] = static_cast<float>(rng.normal());
  }
  return v;
}

ServeOptions base_options(int workers) {
  ServeOptions options;
  options.num_workers = workers;
  options.queue_capacity = 8;
  options.default_deadline_ms = 0;
  return options;
}

/// Resolves the future and returns the ServeError kind it failed with.
ServeErrorKind failure_kind(std::future<core::SegmentationResult>& fut) {
  try {
    (void)fut.get();
  } catch (const ServeError& e) {
    return e.kind();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "future failed with a non-ServeError: " << e.what();
    return ServeErrorKind::kBackendFailed;
  }
  ADD_FAILURE() << "future resolved with a result, expected a ServeError";
  return ServeErrorKind::kBackendFailed;
}

bool wait_for_hung(int64_t n, int timeout_ms = 20000) {
  auto& injector = common::FaultInjector::instance();
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (injector.hung_now() >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { common::FaultInjector::instance().reset(); }
  void TearDown() override { common::FaultInjector::instance().reset(); }
};

TEST_F(ServerTest, NominalLoadMatchesDirectServiceBitwise) {
  SegmentationServer server(tiny_model(), "", base_options(2));
  core::SegmentationService direct(tiny_model(), "");

  std::vector<std::future<core::SegmentationResult>> futures;
  futures.reserve(6);
  for (uint64_t s = 0; s < 6; ++s) {
    futures.push_back(server.submit(noise_volume(s)));
  }
  for (uint64_t s = 0; s < 6; ++s) {
    const core::SegmentationResult got = futures[s].get();
    const core::SegmentationResult want = direct.segment(noise_volume(s));
    ASSERT_EQ(got.probabilities.tensor().numel(),
              want.probabilities.tensor().numel());
    for (int64_t i = 0; i < got.probabilities.tensor().numel(); ++i) {
      ASSERT_EQ(got.probabilities.tensor()[i], want.probabilities.tensor()[i])
          << "subject " << s << " voxel " << i;
    }
    EXPECT_EQ(got.tumor_voxels, want.tumor_voxels);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.timeouts, 0);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.discarded, 0);
  EXPECT_EQ(server.health(), HealthState::kHealthy);
}

TEST_F(ServerTest, SubmitRejectsBadRequestsBeforeQueueing) {
  SegmentationServer server(tiny_model(), "", base_options(1));

  data::Volume wrong_channels(3, 8, 8, 8);
  try {
    (void)server.submit(std::move(wrong_channels));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeErrorKind::kBadInput);
  }

  RequestOptions bad_threshold;
  bad_threshold.threshold = 0.0F;
  try {
    (void)server.submit(noise_volume(0), bad_threshold);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeErrorKind::kBadInput);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 0);
  EXPECT_EQ(stats.errors, 2);
}

TEST_F(ServerTest, DegenerateVolumesFailTypedWithoutTrippingBreaker) {
  SegmentationServer server(tiny_model(), "", base_options(1));
  // More bad inputs than the breaker's trip threshold: input problems
  // must never be mistaken for backend health problems.
  for (uint64_t s = 0; s < 4; ++s) {
    data::Volume v = noise_volume(s);
    v.at(0, 1, 2, 3) = std::numeric_limits<float>::quiet_NaN();
    auto fut = server.submit(std::move(v));
    EXPECT_EQ(failure_kind(fut), ServeErrorKind::kBadInput);
  }
  EXPECT_EQ(server.health(), HealthState::kHealthy);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.errors, 4);
  EXPECT_EQ(stats.breaker_trips, 0);

  // And a clean request still succeeds.
  EXPECT_GT(server.segment(noise_volume(9)).probabilities.tensor().numel(), 0);
}

TEST_F(ServerTest, QueueFullShedsWithTypedError) {
  auto& injector = common::FaultInjector::instance();
  ServeOptions options = base_options(1);
  options.queue_capacity = 2;
  SegmentationServer server(tiny_model(), "", options);

  // Park the single worker on the first request so the queue backs up.
  injector.arm_nth_call("serve.worker", 1);
  injector.set_action_hang("serve.worker");

  auto f1 = server.submit(noise_volume(1));
  ASSERT_TRUE(wait_for_hung(1));
  auto f2 = server.submit(noise_volume(2));
  auto f3 = server.submit(noise_volume(3));
  try {
    (void)server.submit(noise_volume(4));
    FAIL() << "expected kQueueFull";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeErrorKind::kQueueFull);
  }

  injector.release_hangs();
  EXPECT_GT(f1.get().probabilities.tensor().numel(), 0);
  EXPECT_GT(f2.get().probabilities.tensor().numel(), 0);
  EXPECT_GT(f3.get().probabilities.tensor().numel(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.completed, 3);
}

TEST_F(ServerTest, ReaperSettlesDeadlineExpiredWhileQueued) {
  auto& injector = common::FaultInjector::instance();
  SegmentationServer server(tiny_model(), "", base_options(1));

  // The only worker hangs on the first request; the second expires in
  // the queue and must be settled by the reaper, not the worker.
  injector.arm_nth_call("serve.worker", 1);
  injector.set_action_hang("serve.worker");
  auto f1 = server.submit(noise_volume(1));
  ASSERT_TRUE(wait_for_hung(1));

  RequestOptions deadline;
  deadline.deadline_ms = 100;
  auto f2 = server.submit(noise_volume(2), deadline);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(20)), std::future_status::ready)
      << "reaper failed to settle a queued request at its deadline";
  EXPECT_EQ(failure_kind(f2), ServeErrorKind::kDeadlineExceeded);

  injector.release_hangs();
  EXPECT_GT(f1.get().probabilities.tensor().numel(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.discarded, 0);  // settled-while-queued is skipped, not run
}

TEST_F(ServerTest, DeadlineExpiredMidInferenceAbandonsButWorkerSurvives) {
  auto& injector = common::FaultInjector::instance();
  SegmentationServer server(tiny_model(), "", base_options(1));

  // The first inference stalls 500ms inside the model; a 100ms deadline
  // expires mid-flight. The worker must abandon the request and live on.
  injector.arm_nth_call("serve.infer", 1);
  injector.set_action_delay("serve.infer", 500);
  RequestOptions deadline;
  deadline.deadline_ms = 100;
  auto slow = server.submit(noise_volume(1), deadline);
  EXPECT_EQ(failure_kind(slow), ServeErrorKind::kDeadlineExceeded);

  // Fault budget exhausted (max_fires defaults to 1): next request is
  // served by the same worker thread.
  EXPECT_GT(server.segment(noise_volume(2)).probabilities.tensor().numel(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.timeouts, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(server.health(), HealthState::kHealthy);  // timeout != failure
}

TEST_F(ServerTest, WorkerCrashFailsOnlyThatRequest) {
  auto& injector = common::FaultInjector::instance();
  SegmentationServer server(tiny_model(), "", base_options(1));

  injector.arm_nth_call("serve.worker", 1);  // throws FaultInjected once
  auto doomed = server.submit(noise_volume(1));
  EXPECT_EQ(failure_kind(doomed), ServeErrorKind::kBackendFailed);

  EXPECT_GT(server.segment(noise_volume(2)).probabilities.tensor().numel(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(server.health(), HealthState::kHealthy);  // 1 < trip threshold
}

TEST_F(ServerTest, CorruptOutputIsCaughtAsBackendFailure) {
  auto& injector = common::FaultInjector::instance();
  SegmentationServer server(tiny_model(), "", base_options(1));

  injector.arm_nth_call("serve.infer.corrupt", 1);
  auto corrupted = server.submit(noise_volume(1));
  EXPECT_EQ(failure_kind(corrupted), ServeErrorKind::kBackendFailed);

  // Output validation must not let NaN probabilities poison later work.
  const core::SegmentationResult clean = server.segment(noise_volume(2));
  for (int64_t i = 0; i < clean.probabilities.tensor().numel(); ++i) {
    ASSERT_TRUE(std::isfinite(clean.probabilities.tensor()[i]));
  }
}

TEST_F(ServerTest, BreakerTripsShedsProbesAndRecovers) {
  auto& injector = common::FaultInjector::instance();
  ServeOptions options = base_options(1);
  options.breaker_trip_failures = 2;
  options.breaker_recovery_successes = 2;
  SegmentationServer server(tiny_model(), "", options);

  // Two consecutive backend crashes open the breaker.
  injector.arm_every_n("serve.worker", 1, /*max_fires=*/2);
  for (int i = 0; i < 2; ++i) {
    auto fut = server.submit(noise_volume(static_cast<uint64_t>(i)));
    EXPECT_EQ(failure_kind(fut), ServeErrorKind::kBackendFailed);
  }
  EXPECT_EQ(server.health(), HealthState::kDegraded);
  EXPECT_EQ(server.stats().breaker_trips, 1);

  // While degraded, exactly one probe is admitted; the rest shed.
  injector.arm_nth_call("serve.infer", 1);
  injector.set_action_hang("serve.infer");
  auto probe = server.submit(noise_volume(10));
  ASSERT_TRUE(wait_for_hung(1));
  try {
    (void)server.submit(noise_volume(11));
    FAIL() << "expected kShedding while probe in flight";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeErrorKind::kShedding);
  }
  injector.release_hangs();
  EXPECT_GT(probe.get().probabilities.tensor().numel(), 0);
  EXPECT_EQ(server.health(), HealthState::kDegraded);  // 1 of 2 successes

  // Second successful probe closes the breaker.
  EXPECT_GT(server.segment(noise_volume(12)).probabilities.tensor().numel(),
            0);
  EXPECT_EQ(server.health(), HealthState::kHealthy);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker_recoveries, 1);
  EXPECT_EQ(stats.shed, 1);
}

TEST_F(ServerTest, BreakerRecoveryRereadsElasticWorldSize) {
  auto& injector = common::FaultInjector::instance();
  auto& world_gauge =
      obs::MetricsRegistry::instance().gauge("train.elastic.world_size");

  // The co-located trainer is running at world 4 when the server boots.
  world_gauge.set(4.0);
  ServeOptions options = base_options(1);
  options.breaker_trip_failures = 2;
  options.breaker_recovery_successes = 1;
  SegmentationServer server(tiny_model(), "", options);
  EXPECT_EQ(server.stats().observed_world_size, 4);

  // The trainer shrinks (a rank died) while the breaker is tripping —
  // the stale boot-time observation must not survive the recovery.
  injector.arm_every_n("serve.worker", 1, /*max_fires=*/2);
  for (int i = 0; i < 2; ++i) {
    auto fut = server.submit(noise_volume(static_cast<uint64_t>(i)));
    EXPECT_EQ(failure_kind(fut), ServeErrorKind::kBackendFailed);
  }
  ASSERT_EQ(server.health(), HealthState::kDegraded);
  world_gauge.set(3.0);
  EXPECT_EQ(server.stats().observed_world_size, 4);  // not yet re-read

  // The successful probe closes the breaker and refreshes the view.
  EXPECT_GT(server.segment(noise_volume(10)).probabilities.tensor().numel(),
            0);
  ASSERT_EQ(server.health(), HealthState::kHealthy);
  EXPECT_EQ(server.stats().observed_world_size, 3);
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::instance()
                       .gauge("serve.observed_world_size")
                       .value(),
                   3.0);
  world_gauge.set(0.0);  // don't leak state into other tests
}

TEST_F(ServerTest, ShedsWhenPredictedWaitExceedsDeadline) {
  auto& injector = common::FaultInjector::instance();
  SegmentationServer server(tiny_model(), "", base_options(1));

  // Establish a latency estimate well above 1ms.
  injector.arm_nth_call("serve.infer", 1);
  injector.set_action_delay("serve.infer", 80);
  EXPECT_GT(server.segment(noise_volume(1)).probabilities.tensor().numel(), 0);

  RequestOptions hopeless;
  hopeless.deadline_ms = 1;
  try {
    (void)server.submit(noise_volume(2), hopeless);
    FAIL() << "expected kShedding on predicted deadline miss";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeErrorKind::kShedding);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.timeouts, 0);  // shed at admission, not timed out
}

TEST_F(ServerTest, DrainCompletesInflightThenShedsNewArrivals) {
  auto& injector = common::FaultInjector::instance();
  SegmentationServer server(tiny_model(), "", base_options(2));

  injector.arm_every_n("serve.infer", 1, /*max_fires=*/3);
  injector.set_action_delay("serve.infer", 100);
  std::vector<std::future<core::SegmentationResult>> futures;
  for (uint64_t s = 0; s < 3; ++s) {
    futures.push_back(server.submit(noise_volume(s)));
  }
  server.drain();

  // Drain returned only after all admitted work settled.
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_GT(fut.get().probabilities.tensor().numel(), 0);
  }
  EXPECT_EQ(server.health(), HealthState::kDraining);
  try {
    (void)server.submit(noise_volume(5));
    FAIL() << "expected kShedding while draining";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeErrorKind::kShedding);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.shed, 1);
}

TEST_F(ServerTest, OversizedVolumesServedViaSlidingWindowMatchDirect) {
  ServeOptions options = base_options(1);
  options.full_volume_voxel_budget = 1000;
  options.sliding_window.patch_depth = 8;
  options.sliding_window.patch_height = 8;
  options.sliding_window.patch_width = 8;
  options.sliding_window.halo = 12;
  SegmentationServer server(tiny_model(), "", options);

  const data::Volume big = noise_volume(21, 8, 20, 20);  // 3200 > budget
  const core::SegmentationResult served = server.segment(big);

  core::SegmentationService direct(tiny_model(), "");
  core::SegmentOptions direct_opts;
  direct_opts.full_volume_voxel_budget = options.full_volume_voxel_budget;
  direct_opts.sliding_window = options.sliding_window;
  const core::SegmentationResult want = direct.segment(big, direct_opts);

  ASSERT_EQ(served.probabilities.tensor().numel(),
            want.probabilities.tensor().numel());
  for (int64_t i = 0; i < served.probabilities.tensor().numel(); ++i) {
    ASSERT_EQ(served.probabilities.tensor()[i],
              want.probabilities.tensor()[i]);
  }
}

TEST_F(ServerTest, OptionsFromEnvReadKnobs) {
  ::setenv("DMIS_SERVE_WORKERS", "3", 1);
  ::setenv("DMIS_SERVE_QUEUE", "5", 1);
  ::setenv("DMIS_SERVE_DEADLINE_MS", "1234", 1);
  ::setenv("DMIS_SERVE_VOXEL_BUDGET", "99", 1);
  const ServeOptions options = ServeOptions::from_env();
  ::unsetenv("DMIS_SERVE_WORKERS");
  ::unsetenv("DMIS_SERVE_QUEUE");
  ::unsetenv("DMIS_SERVE_DEADLINE_MS");
  ::unsetenv("DMIS_SERVE_VOXEL_BUDGET");
  EXPECT_EQ(options.num_workers, 3);
  EXPECT_EQ(options.queue_capacity, 5);
  EXPECT_EQ(options.default_deadline_ms, 1234);
  EXPECT_EQ(options.full_volume_voxel_budget, 99);
}

TEST_F(ServerTest, ErrorKindNamesAreStable) {
  EXPECT_STREQ(serve_error_kind_name(ServeErrorKind::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(serve_error_kind_name(ServeErrorKind::kQueueFull),
               "queue_full");
  EXPECT_STREQ(serve_error_kind_name(ServeErrorKind::kShedding), "shedding");
  EXPECT_STREQ(serve_error_kind_name(ServeErrorKind::kBadInput), "bad_input");
  EXPECT_STREQ(serve_error_kind_name(ServeErrorKind::kBackendFailed),
               "backend_failed");
  EXPECT_STREQ(health_state_name(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(health_state_name(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(health_state_name(HealthState::kDraining), "draining");
  const ServeError err(ServeErrorKind::kQueueFull, "try later");
  EXPECT_EQ(err.kind(), ServeErrorKind::kQueueFull);
  EXPECT_NE(std::string(err.what()).find("queue_full"), std::string::npos);
}

}  // namespace
}  // namespace dmis::serve
