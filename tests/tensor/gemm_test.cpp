#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "tensor/rng.hpp"
#include "tensor/thread_pool.hpp"

namespace dmis {
namespace {

std::vector<float> random_matrix(int64_t rows, int64_t cols, Rng& rng) {
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

/// Scalar triple-loop reference with double accumulation.
void reference_gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, const float* a, int64_t lda, const float* b,
                    int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = accumulate ? static_cast<double>(c[i * ldc + j]) : 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * ldc + j] = static_cast<float>(acc);
    }
  }
}

void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, int64_t k) {
  ASSERT_EQ(got.size(), want.size());
  // float32 dot products of k uniform[-1,1] terms: scale the tolerance
  // with sqrt(k) rounding growth.
  const double tol = 1e-5 * std::max(1.0, std::sqrt(static_cast<double>(k)));
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

struct GemmCase {
  int64_t m, n, k;
};

// Shapes chosen to exercise every ragged edge of the blocking: smaller
// than one register tile, exact multiples, one-past multiples of the
// 6x16 microkernel, and sizes crossing the MC=96 / KC=256 / NC=2048
// cache-block boundaries.
const GemmCase kCases[] = {
    {1, 1, 1},    {1, 1, 7},     {3, 5, 7},    {6, 16, 32},
    {7, 17, 19},  {8, 4096, 216}, {13, 31, 257}, {97, 33, 100},
    {100, 2049, 3}, {192, 48, 512},
};

class SgemmShapes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SgemmShapes, MatchesScalarReferenceAllTransCombos) {
  const GemmCase t = GetParam();
  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(t.m * 1000003 + t.n * 17 + t.k));
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "trans_a=" << trans_a
                                        << " trans_b=" << trans_b);
      const auto a = trans_a ? random_matrix(t.k, t.m, rng)
                             : random_matrix(t.m, t.k, rng);
      const auto b = trans_b ? random_matrix(t.n, t.k, rng)
                             : random_matrix(t.k, t.n, rng);
      const int64_t lda = trans_a ? t.m : t.k;
      const int64_t ldb = trans_b ? t.k : t.n;
      std::vector<float> got(static_cast<size_t>(t.m * t.n), 0.0F);
      std::vector<float> want(static_cast<size_t>(t.m * t.n), 0.0F);
      sgemm(trans_a, trans_b, t.m, t.n, t.k, a.data(), lda, b.data(), ldb,
            got.data(), t.n);
      reference_gemm(trans_a, trans_b, t.m, t.n, t.k, a.data(), lda, b.data(),
                     ldb, want.data(), t.n, false);
      expect_close(got, want, t.k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SgemmShapes, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<GemmCase>& info) {
                           return "m" + std::to_string(info.param.m) + "n" +
                                  std::to_string(info.param.n) + "k" +
                                  std::to_string(info.param.k);
                         });

TEST(SgemmTest, AccumulateAddsOntoExistingC) {
  Rng rng(7);
  const int64_t m = 19, n = 45, k = 33;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto got = random_matrix(m, n, rng);
  auto want = got;
  sgemm(false, false, m, n, k, a.data(), k, b.data(), n, got.data(), n,
        /*accumulate=*/true);
  reference_gemm(false, false, m, n, k, a.data(), k, b.data(), n, want.data(),
                 n, /*accumulate=*/true);
  expect_close(got, want, k);
}

TEST(SgemmTest, RespectsLeadingDimensions) {
  // Operate on the interior of larger allocations: ld > logical extent.
  Rng rng(11);
  const int64_t m = 9, n = 14, k = 21;
  const int64_t lda = k + 5, ldb = n + 3, ldc = n + 7;
  const auto a = random_matrix(m, lda, rng);
  const auto b = random_matrix(k, ldb, rng);
  std::vector<float> got(static_cast<size_t>(m * ldc), -1.0F);
  auto want = got;
  sgemm(false, false, m, n, k, a.data(), lda, b.data(), ldb, got.data(), ldc);
  reference_gemm(false, false, m, n, k, a.data(), lda, b.data(), ldb,
                 want.data(), ldc, false);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < ldc; ++j) {
      if (j < n) {
        ASSERT_NEAR(got[i * ldc + j], want[i * ldc + j], 1e-4F);
      } else {
        // Padding beyond n must be untouched.
        ASSERT_EQ(got[i * ldc + j], -1.0F) << "row " << i << " col " << j;
      }
    }
  }
}

TEST(SgemmTest, KZeroZeroesOrKeepsC) {
  std::vector<float> c(12, 3.0F);
  sgemm(false, false, 3, 4, 0, nullptr, 0, nullptr, 0, c.data(), 4,
        /*accumulate=*/true);
  for (float v : c) EXPECT_EQ(v, 3.0F);
  sgemm(false, false, 3, 4, 0, nullptr, 0, nullptr, 0, c.data(), 4,
        /*accumulate=*/false);
  for (float v : c) EXPECT_EQ(v, 0.0F);
}

TEST(SgemmTest, RejectsBadLeadingDimensions) {
  std::vector<float> a(6), b(6), c(4);
  EXPECT_THROW(sgemm(false, false, 2, 2, 3, a.data(), 2, b.data(), 2,
                     c.data(), 2),
               InvalidArgument);
  EXPECT_THROW(sgemm(false, false, 2, 2, 3, a.data(), 3, b.data(), 2,
                     c.data(), 1),
               InvalidArgument);
}

TEST(SgemmTest, ThreadCountInvariance) {
  // Per-element accumulation order is fixed by the serial k-blocking, so
  // any worker count must produce bitwise-identical results.
  Rng rng(23);
  const int64_t m = 200, n = 300, k = 300;  // several MC blocks, 2 KC blocks
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  std::vector<float> c1(static_cast<size_t>(m * n));
  std::vector<float> c4(static_cast<size_t>(m * n));
  sgemm(false, false, m, n, k, a.data(), k, b.data(), n, c1.data(), n, false,
        &pool1);
  sgemm(false, false, m, n, k, a.data(), k, b.data(), n, c4.data(), n, false,
        &pool4);
  for (size_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1[i], c4[i]) << "element " << i
                            << " differs between 1 and 4 threads";
  }
}

}  // namespace
}  // namespace dmis
