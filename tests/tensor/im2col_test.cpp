#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis {
namespace {

int64_t out_extent(int64_t in, int64_t k, int64_t s, int64_t p) {
  return (in + 2 * p - k) / s + 1;
}

std::vector<float> random_volume(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Element-by-element gather reference for one (c, kz, ky, kx, od, oh, ow).
std::vector<float> reference_im2col(const std::vector<float>& im, int64_t c,
                                    int64_t d, int64_t h, int64_t w,
                                    int64_t k, int64_t s, int64_t p,
                                    int64_t od, int64_t oh, int64_t ow) {
  std::vector<float> col(static_cast<size_t>(c * k * k * k * od * oh * ow));
  int64_t row = 0;
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t kz = 0; kz < k; ++kz) {
      for (int64_t ky = 0; ky < k; ++ky) {
        for (int64_t kx = 0; kx < k; ++kx, ++row) {
          int64_t colidx = 0;
          for (int64_t z = 0; z < od; ++z) {
            for (int64_t y = 0; y < oh; ++y) {
              for (int64_t x = 0; x < ow; ++x, ++colidx) {
                const int64_t iz = z * s - p + kz;
                const int64_t iy = y * s - p + ky;
                const int64_t ix = x * s - p + kx;
                float v = 0.0F;
                if (iz >= 0 && iz < d && iy >= 0 && iy < h && ix >= 0 &&
                    ix < w) {
                  v = im[static_cast<size_t>(((ci * d + iz) * h + iy) * w +
                                             ix)];
                }
                col[static_cast<size_t>(row * od * oh * ow + colidx)] = v;
              }
            }
          }
        }
      }
    }
  }
  return col;
}

struct Geom {
  int64_t c, d, h, w, k, s, p;
};

class Im2colGeometry : public ::testing::TestWithParam<Geom> {};

TEST_P(Im2colGeometry, MatchesGatherReference) {
  const Geom g = GetParam();
  const int64_t od = out_extent(g.d, g.k, g.s, g.p);
  const int64_t oh = out_extent(g.h, g.k, g.s, g.p);
  const int64_t ow = out_extent(g.w, g.k, g.s, g.p);
  Rng rng(31 + static_cast<uint64_t>(g.k * 10 + g.s));
  const auto im = random_volume(g.c * g.d * g.h * g.w, rng);
  std::vector<float> col(
      static_cast<size_t>(g.c * g.k * g.k * g.k * od * oh * ow), -7.0F);
  im2col_3d(im.data(), g.c, g.d, g.h, g.w, g.k, g.s, g.p, od, oh, ow,
            col.data());
  const auto want =
      reference_im2col(im, g.c, g.d, g.h, g.w, g.k, g.s, g.p, od, oh, ow);
  ASSERT_EQ(col.size(), want.size());
  for (size_t i = 0; i < col.size(); ++i) {
    ASSERT_EQ(col[i], want[i]) << "flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colGeometry,
    ::testing::Values(Geom{1, 3, 3, 3, 1, 1, 0},   // identity lowering
                      Geom{2, 5, 4, 6, 3, 1, 1},   // "same" 3x3x3
                      Geom{3, 7, 5, 9, 3, 2, 1},   // strided, odd extents
                      Geom{2, 6, 6, 4, 2, 2, 0},   // pooling-like
                      Geom{1, 9, 7, 5, 5, 1, 2},   // wide kernel
                      Geom{2, 5, 5, 5, 3, 1, 0}),  // valid (no pad)
    [](const ::testing::TestParamInfo<Geom>& info) {
      const Geom& g = info.param;
      return "c" + std::to_string(g.c) + "d" + std::to_string(g.d) + "h" +
             std::to_string(g.h) + "w" + std::to_string(g.w) + "k" +
             std::to_string(g.k) + "s" + std::to_string(g.s) + "p" +
             std::to_string(g.p);
    });

TEST(Im2colTest, Kernel1Stride1IsIdentity) {
  Rng rng(5);
  const auto im = random_volume(2 * 3 * 4 * 5, rng);
  std::vector<float> col(im.size());
  im2col_3d(im.data(), 2, 3, 4, 5, 1, 1, 0, 3, 4, 5, col.data());
  EXPECT_EQ(col, im);
}

TEST(Im2colTest, Col2imIsAdjointOfIm2col) {
  // <col_grad, im2col(x)> == <col2im(col_grad), x> for random tensors —
  // the defining property that makes the gemm backward pass correct.
  const int64_t c = 2, d = 5, h = 6, w = 7, k = 3, s = 2, p = 1;
  const int64_t od = out_extent(d, k, s, p), oh = out_extent(h, k, s, p),
                ow = out_extent(w, k, s, p);
  const int64_t rows = c * k * k * k, cols = od * oh * ow;
  Rng rng(99);
  const auto x = random_volume(c * d * h * w, rng);
  const auto cg = random_volume(rows * cols, rng);

  std::vector<float> col(static_cast<size_t>(rows * cols));
  im2col_3d(x.data(), c, d, h, w, k, s, p, od, oh, ow, col.data());
  std::vector<float> back(x.size(), 0.0F);
  col2im_3d(cg.data(), c, d, h, w, k, s, p, od, oh, ow, back.data());

  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < col.size(); ++i) {
    lhs += static_cast<double>(cg[i]) * col[i];
  }
  for (size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(back[i]) * x[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

TEST(Im2colTest, Col2imAccumulatesIntoExistingImage) {
  const int64_t c = 1, d = 2, h = 2, w = 2;
  std::vector<float> col(8, 1.0F);  // k=1 s=1: one row, identity scatter
  std::vector<float> im(8, 0.5F);
  col2im_3d(col.data(), c, d, h, w, 1, 1, 0, 2, 2, 2, im.data());
  for (float v : im) EXPECT_FLOAT_EQ(v, 1.5F);
}

TEST(Im2colTest, RejectsInconsistentOutputExtents) {
  std::vector<float> im(27), col(27);
  EXPECT_THROW(
      im2col_3d(im.data(), 1, 3, 3, 3, 1, 1, 0, 2, 3, 3, col.data()),
      InvalidArgument);
}

}  // namespace
}  // namespace dmis
