#include "tensor/ndarray.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace dmis {
namespace {

TEST(NDArrayTest, ZeroInitialized) {
  NDArray a(Shape{2, 3});
  EXPECT_EQ(a.numel(), 6);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], 0.0F);
}

TEST(NDArrayTest, FillAndValueConstructor) {
  NDArray a(Shape{4}, 2.5F);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(a[i], 2.5F);
  a.fill(-1.0F);
  EXPECT_EQ(a.sum(), -4.0);
}

TEST(NDArrayTest, FromSpanChecksSize) {
  const std::vector<float> v{1, 2, 3, 4, 5, 6};
  NDArray a(Shape{2, 3}, v);
  EXPECT_EQ(a[5], 6.0F);
  EXPECT_THROW(NDArray(Shape{2, 2}, std::span<const float>(v)),
               InvalidArgument);
}

TEST(NDArrayTest, CopyIsDeep) {
  NDArray a(Shape{3}, 1.0F);
  NDArray b = a;
  b[0] = 9.0F;
  EXPECT_EQ(a[0], 1.0F);
}

TEST(NDArrayTest, ElementwiseOps) {
  NDArray a(Shape{3}, 1.0F);
  NDArray b(Shape{3}, 2.0F);
  a.add_(b);
  EXPECT_EQ(a[1], 3.0F);
  a.sub_(b);
  EXPECT_EQ(a[1], 1.0F);
  a.scale_(4.0F);
  EXPECT_EQ(a[1], 4.0F);
  a.axpy_(0.5F, b);
  EXPECT_EQ(a[1], 5.0F);
  NDArray c(Shape{4}, 1.0F);
  EXPECT_THROW(a.add_(c), InvalidArgument);
}

TEST(NDArrayTest, Reductions) {
  const std::vector<float> v{-1, 0, 2, 5};
  NDArray a(Shape{4}, v);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  EXPECT_EQ(a.max(), 5.0F);
  EXPECT_EQ(a.min(), -1.0F);
  EXPECT_NEAR(a.l2_norm(), std::sqrt(1 + 0 + 4 + 25), 1e-12);
}

TEST(NDArrayTest, ReshapePreservesData) {
  NDArray a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  a.reshape(Shape{3, 2});
  EXPECT_EQ(a.shape(), (Shape{3, 2}));
  EXPECT_EQ(a[4], 5.0F);
  EXPECT_THROW(a.reshape(Shape{7}), InvalidArgument);
}

TEST(NDArrayTest, AtBoundsChecked) {
  NDArray a(Shape{2});
  EXPECT_NO_THROW(a.at(1));
  EXPECT_THROW(a.at(2), InvalidArgument);
  EXPECT_THROW(a.at(-1), InvalidArgument);
}

TEST(NDArrayTest, Allclose) {
  NDArray a(Shape{2}, 1.0F);
  NDArray b(Shape{2}, 1.0F);
  b[0] += 1e-6F;
  EXPECT_TRUE(a.allclose(b));
  b[0] += 1.0F;
  EXPECT_FALSE(a.allclose(b));
  EXPECT_FALSE(a.allclose(NDArray(Shape{3}, 1.0F)));
}

}  // namespace
}  // namespace dmis
