#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace dmis {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(11);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const int64_t v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++hits[static_cast<size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, TruncatedNormalStaysWithinTwoSigma) {
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.truncated_normal(1.0, 0.5);
    EXPECT_LE(std::fabs(x - 1.0), 2.0 * 0.5 + 1e-12);
  }
}

TEST(RngTest, TruncatedNormalZeroStddevIsMean) {
  Rng rng(1);
  EXPECT_EQ(rng.truncated_normal(3.5, 0.0), 3.5);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng sa = a.split();
  Rng sb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
  // Parent and child streams diverge.
  Rng c(42);
  Rng child = c.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace dmis
