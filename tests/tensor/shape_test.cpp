#include "tensor/shape.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dmis {
namespace {

TEST(ShapeTest, DefaultIsRankZeroScalar) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, BasicDimsAndNumel) {
  Shape s{2, 4, 24, 24, 16};
  EXPECT_EQ(s.rank(), 5);
  EXPECT_EQ(s.n(), 2);
  EXPECT_EQ(s.c(), 4);
  EXPECT_EQ(s.d(), 24);
  EXPECT_EQ(s.h(), 24);
  EXPECT_EQ(s.w(), 16);
  EXPECT_EQ(s.numel(), 2 * 4 * 24 * 24 * 16);
}

TEST(ShapeTest, NegativeAxes) {
  Shape s{3, 5, 7};
  EXPECT_EQ(s.dim(-1), 7);
  EXPECT_EQ(s.dim(-3), 3);
  EXPECT_THROW(s.dim(-4), InvalidArgument);
  EXPECT_THROW(s.dim(3), InvalidArgument);
}

TEST(ShapeTest, StridesAreRowMajor) {
  Shape s{2, 3, 4};
  const auto st = s.strides();
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(ShapeTest, AppendedAndWithDim) {
  Shape s{2, 3};
  EXPECT_EQ(s.appended(5), (Shape{2, 3, 5}));
  EXPECT_EQ(s.with_dim(0, 9), (Shape{9, 3}));
  EXPECT_EQ(s, (Shape{2, 3}));  // originals untouched
}

TEST(ShapeTest, RejectsBadDims) {
  EXPECT_THROW((Shape{0, 3}), InvalidArgument);
  EXPECT_THROW((Shape{2, -1}), InvalidArgument);
  EXPECT_THROW((Shape{1, 1, 1, 1, 1, 1}), InvalidArgument);
}

TEST(ShapeTest, EqualityAndStr) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
  EXPECT_EQ((Shape{4, 240, 240, 152}).str(), "[4, 240, 240, 152]");
}

}  // namespace
}  // namespace dmis
