#include "tensor/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace dmis {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
  parallel_for(pool, 5, 3, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, MatchesSerialSum) {
  ThreadPool pool(8);
  std::vector<double> partial(8, 0.0);
  std::atomic<int> slot{0};
  parallel_for(pool, 1, 100001, [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += static_cast<double>(i);
    partial[static_cast<size_t>(slot.fetch_add(1))] = acc;
  });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 100000.0 * 100001.0 / 2.0);
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](int64_t lo, int64_t) {
                     if (lo >= 0) throw InternalError("boom");
                   }),
      InternalError);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      parallel_for(pool, 0, 8, [&](int64_t l2, int64_t h2) {
        count.fetch_add(static_cast<int>(h2 - l2));
      });
    }
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_for(pool, 0, 10,
               [&](int64_t, int64_t) { body_thread = std::this_thread::get_id(); });
  EXPECT_EQ(body_thread, caller);
}

}  // namespace
}  // namespace dmis
