// Elastic data-parallel training: replica failure either fails fast
// (default) or shrinks the group to the survivors and resumes from the
// step-consistent checkpoint (MirroredOptions::elastic / DMIS_ELASTIC).
#include "train/mirrored.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "tensor/rng.hpp"

namespace dmis::train {
namespace {

std::vector<data::Example> make_examples(int64_t n, uint64_t seed) {
  std::vector<data::Example> out;
  Rng rng(seed);
  const int64_t S = 4;
  for (int64_t id = 0; id < n; ++id) {
    data::Example ex;
    ex.id = id;
    ex.image = NDArray(Shape{1, S, S, S});
    ex.label = NDArray(Shape{1, S, S, S});
    for (int64_t i = 0; i < ex.image.numel(); ++i) {
      ex.image[i] = static_cast<float>(rng.normal());
      ex.label[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
    }
    out.push_back(std::move(ex));
  }
  return out;
}

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 11;
  opts.batch_norm = false;
  return opts;
}

std::vector<float> flat_params(nn::UNet3d& model) {
  std::vector<float> out;
  for (const nn::Param& p : model.params()) {
    out.insert(out.end(), p.value->data(),
               p.value->data() + p.value->numel());
  }
  return out;
}

class ElasticMirroredTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::instance().reset();
    dir_ = (std::filesystem::temp_directory_path() /
            ("dmis_elastic_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    common::FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

// Elastic off (the default): a replica killed mid-step fails the whole
// fit() promptly — the trial-retry layer above owns recovery.
TEST_F(ElasticMirroredTest, FailFastRethrowsWhenElasticOff) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r2", 1);
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  MirroredStrategy mirrored(tiny_model(), mopt);
  EXPECT_FALSE(mirrored.elastic());
  data::BatchStream train(data::from_examples(make_examples(6, 4)), 3);
  EXPECT_THROW(mirrored.fit(train, nullptr), Error);
  EXPECT_EQ(mirrored.recoveries(), 0);
}

// The acceptance-gate equivalence: kill one of three replicas on the
// very first step. Elastic recovery restores the step-0 checkpoint
// (initial weights, zero optimizer state) and rescales the lr to the
// new world size, so the shrunken run must match a fault-free 2-replica
// run arithmetically.
TEST_F(ElasticMirroredTest, ShrinksAndMatchesFreshSmallerRun) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r2", 1);
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  MirroredStrategy mirrored(tiny_model(), mopt);
  ASSERT_TRUE(mirrored.elastic());
  data::BatchStream train(data::from_examples(make_examples(6, 4)), 3);
  const TrainReport report = mirrored.fit(train, nullptr);

  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 2);
  EXPECT_DOUBLE_EQ(mirrored.effective_lr(), 2e-3);  // rescaled to world 2
  ASSERT_EQ(report.history.size(), 2U);
  EXPECT_TRUE(std::isfinite(report.history.back().train_loss));
  EXPECT_TRUE(
      std::filesystem::exists(std::filesystem::path(dir_) / "elastic.ckpt"));

  common::FaultInjector::instance().reset();
  MirroredOptions fresh;
  fresh.num_replicas = 2;
  fresh.train = mopt.train;
  MirroredStrategy reference(tiny_model(), fresh);
  data::BatchStream train_ref(data::from_examples(make_examples(6, 4)), 3);
  const TrainReport ref_report = reference.fit(train_ref, nullptr);

  const auto wa = flat_params(mirrored.model());
  const auto wb = flat_params(reference.model());
  ASSERT_EQ(wa.size(), wb.size());
  for (size_t i = 0; i < wa.size(); ++i) {
    ASSERT_NEAR(wa[i], wb[i], 1e-6F) << "param element " << i;
  }
  EXPECT_NEAR(report.history.back().train_loss,
              ref_report.history.back().train_loss, 1e-6);
}

// Mid-training failure: the restore has to bring back *optimizer* slot
// state and the stream position, not just weights. (Exact equivalence
// is checked above from a step-0 kill; here the already-trained state
// makes the point that recovery resumes rather than restarts.)
TEST_F(ElasticMirroredTest, RecoversFromMidTrainingFailure) {
  // Fires on rank 2's third allreduce — past the first epoch's steps,
  // so the restored checkpoint carries real optimizer state.
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r2", 3);
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train(data::from_examples(make_examples(6, 4)), 3);
  const TrainReport report = mirrored.fit(train, nullptr);
  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 2);
  ASSERT_EQ(report.history.size(), 2U);
  for (const EpochStats& s : report.history) {
    EXPECT_TRUE(std::isfinite(s.train_loss));
    EXPECT_EQ(s.steps, 2);  // both epochs complete despite the failure
  }
}

// Elastic recovery composes with gradient compression: a mid-training
// rank loss under top-k (the mode with cross-step residual state)
// shrinks to survivors and finishes with finite losses. The residual
// export/import mechanics are unit-tested in grad_bucketer_test; this
// exercises the full recover() path that carries them across the
// group rebuild.
TEST_F(ElasticMirroredTest, RecoversWithTopKCompressionState) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r2", 3);
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  mopt.compress.mode = comm::CompressMode::kTopK;
  mopt.compress.topk_ratio = 0.25;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train(data::from_examples(make_examples(6, 4)), 3);
  const TrainReport report = mirrored.fit(train, nullptr);
  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 2);
  ASSERT_EQ(report.history.size(), 2U);
  for (const EpochStats& s : report.history) {
    EXPECT_TRUE(std::isfinite(s.train_loss));
    EXPECT_EQ(s.steps, 2);
  }
}

// And with the dense fp16 wire (no residual state, but the rebuilt
// group must keep the codec): same kill, same survival contract.
TEST_F(ElasticMirroredTest, RecoversWithFp16Wire) {
  common::FaultInjector::instance().arm_nth_call("comm.all_reduce.r2", 3);
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  mopt.compress.mode = comm::CompressMode::kFp16;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train(data::from_examples(make_examples(6, 4)), 3);
  const TrainReport report = mirrored.fit(train, nullptr);
  EXPECT_EQ(mirrored.recoveries(), 1);
  EXPECT_EQ(mirrored.world_size(), 2);
  ASSERT_EQ(report.history.size(), 2U);
  for (const EpochStats& s : report.history) {
    EXPECT_TRUE(std::isfinite(s.train_loss));
  }
}

// When every replica dies in the same step there is nobody to shrink
// to: elastic mode rethrows like fail-fast instead of looping.
TEST_F(ElasticMirroredTest, NoSurvivorsRethrows) {
  common::FaultInjector::instance().arm_probability("comm.all_reduce", 1.0);
  MirroredOptions mopt;
  mopt.num_replicas = 2;
  mopt.train.epochs = 1;
  mopt.train.lr = 1e-3;
  mopt.elastic = true;
  mopt.elastic_dir = dir_;
  MirroredStrategy mirrored(tiny_model(), mopt);
  data::BatchStream train(data::from_examples(make_examples(4, 5)), 2);
  EXPECT_THROW(mirrored.fit(train, nullptr), Error);
}

TEST_F(ElasticMirroredTest, EnvOverrideControlsElasticMode) {
  MirroredOptions mopt;
  mopt.num_replicas = 2;
  mopt.elastic_dir = dir_;

  ::setenv("DMIS_ELASTIC", "1", 1);
  MirroredStrategy on(tiny_model(), mopt);
  EXPECT_TRUE(on.elastic());

  ::setenv("DMIS_ELASTIC", "0", 1);
  mopt.elastic = true;
  MirroredStrategy off(tiny_model(), mopt);
  EXPECT_FALSE(off.elastic());
  ::unsetenv("DMIS_ELASTIC");

  // Elastic mode without a checkpoint directory is a configuration
  // error, not a latent crash at recovery time.
  MirroredOptions bad;
  bad.num_replicas = 2;
  bad.elastic = true;
  EXPECT_THROW(MirroredStrategy(tiny_model(), bad), InvalidArgument);
}

}  // namespace
}  // namespace dmis::train
