// GradBucketer: bucket layout, parity of the fused bucketed allreduce
// against the per-tensor scale/allreduce/scale triple pass, bitwise
// determinism for a fixed layout, idle-rank flush, and the
// DMIS_BUCKET_BYTES override.
#include "train/grad_bucketer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "common/check.hpp"
#include "common/fault_injector.hpp"
#include "tensor/rng.hpp"

namespace dmis::train {
namespace {

/// A fake "model": named gradient tensors of the given sizes.
struct FakeParams {
  explicit FakeParams(const std::vector<int64_t>& sizes, uint64_t seed) {
    Rng rng(seed);
    values.reserve(sizes.size());
    grads.reserve(sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
      values.emplace_back(Shape{sizes[i]});
      grads.emplace_back(Shape{sizes[i]});
      for (int64_t k = 0; k < grads.back().numel(); ++k) {
        grads.back()[k] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
    for (size_t i = 0; i < sizes.size(); ++i) {
      params.push_back(nn::Param{"p" + std::to_string(i), &values[i],
                                 &grads[i]});
    }
  }
  std::vector<NDArray> values;
  std::vector<NDArray> grads;
  std::vector<nn::Param> params;
};

void run_ranks(int ranks,
               const std::function<void(int, comm::Communicator&)>& body) {
  auto comms = comm::make_group(ranks);
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] { body(r, comms[static_cast<size_t>(r)]); });
  }
  for (auto& t : threads) t.join();
}

TEST(GradBucketerTest, LayoutPacksReverseRegistrationOrderUnderCap) {
  FakeParams fp({10, 20, 30, 40, 5}, 1);
  auto comms = comm::make_group(1);
  // Cap of 50 floats = 200 bytes.
  GradBucketer bucketer(fp.params, comms[0], 200);
  const auto layout = bucketer.layout();
  // Reverse order: p4(5), p3(40) fit in bucket 0 (45 floats); p2(30),
  // p1(20) fill bucket 1 (50 exactly); p0(10) overflows to bucket 2.
  ASSERT_EQ(layout.size(), 3U);
  EXPECT_EQ(layout[0], (std::vector<std::string>{"p4", "p3"}));
  EXPECT_EQ(layout[1], (std::vector<std::string>{"p2", "p1"}));
  EXPECT_EQ(layout[2], (std::vector<std::string>{"p0"}));
}

TEST(GradBucketerTest, OversizedParameterGetsDirectBucket) {
  FakeParams fp({1000, 2, 3}, 2);
  auto comms = comm::make_group(1);
  GradBucketer bucketer(fp.params, comms[0], 64);  // 16-float cap
  const auto layout = bucketer.layout();
  ASSERT_EQ(layout.size(), 2U);
  EXPECT_EQ(layout[0], (std::vector<std::string>{"p2", "p1"}));
  EXPECT_EQ(layout[1], (std::vector<std::string>{"p0"}));
  // p0 crosses the direct threshold: reduced in place, never packed.
  EXPECT_EQ(bucketer.num_direct(), 1U);
}

TEST(GradBucketerTest, DirectAndPackedBucketsOrderedByCompletion) {
  // Registration [p0..p3] = floats {3000, 10, 4000, 20}; with a 1 KiB
  // cap the 256-float direct threshold sends p0/p2 in place while p3/p1
  // share one packed bucket that spans across them. Launch order is the
  // reverse-walk position of each bucket's LAST tensor: p2 completes
  // first, then the packed pair (at p1), then p0.
  FakeParams fp({3000, 10, 4000, 20}, 5);
  auto comms = comm::make_group(1);
  GradBucketer bucketer(fp.params, comms[0], 1024);
  const auto layout = bucketer.layout();
  ASSERT_EQ(layout.size(), 3U);
  EXPECT_EQ(layout[0], (std::vector<std::string>{"p2"}));
  EXPECT_EQ(layout[1], (std::vector<std::string>{"p3", "p1"}));
  EXPECT_EQ(layout[2], (std::vector<std::string>{"p0"}));
  EXPECT_EQ(bucketer.num_direct(), 2U);
}

TEST(GradBucketerTest, OutOfOrderReadinessStillLaunchesInLayoutOrder) {
  // The hook delivers each node's params in registration order (weight,
  // then bias) while the layout interleaves them in reverse — so a
  // direct weight bucket can COMPLETE before an earlier-layout packed
  // bucket. A ready-driven rank must hold it and still submit in layout
  // order, or it deadlocks/corrupts against an idle rank that goes
  // straight to flush(). Registration: w1, b1, w2, b2.
  const std::vector<int64_t> sizes{20000, 8, 20000, 8};
  const float inv = 0.5F;

  std::vector<FakeParams> ref;
  for (int r = 0; r < 2; ++r) ref.emplace_back(sizes, 60 + r);
  run_ranks(2, [&](int r, comm::Communicator& comm) {
    for (nn::Param& p : ref[static_cast<size_t>(r)].params) {
      comm.all_reduce_sum(p.grad->span());
      p.grad->scale_(inv);
    }
  });

  std::vector<FakeParams> fused;
  for (int r = 0; r < 2; ++r) fused.emplace_back(sizes, 60 + r);
  run_ranks(2, [&](int r, comm::Communicator& comm) {
    auto& fp = fused[static_cast<size_t>(r)];
    GradBucketer bucketer(fp.params, comm, 1024);
    bucketer.begin_step(1.0F, inv);
    if (r == 0) {
      // Hook order: node 2 (w2, b2), then node 1 (w1, b1).
      bucketer.on_grad_ready(fp.params[2]);
      bucketer.on_grad_ready(fp.params[3]);
      bucketer.on_grad_ready(fp.params[0]);
      bucketer.on_grad_ready(fp.params[1]);
    }
    bucketer.flush();
    bucketer.wait_all();
  });

  for (int r = 0; r < 2; ++r) {
    for (size_t i = 0; i < sizes.size(); ++i) {
      const NDArray& a = ref[static_cast<size_t>(r)].grads[i];
      const NDArray& b = fused[static_cast<size_t>(r)].grads[i];
      for (int64_t k = 0; k < a.numel(); ++k) {
        ASSERT_NEAR(a[k], b[k], 1e-6F) << "rank=" << r << " tensor=" << i
                                       << " elem=" << k;
      }
    }
  }
}

TEST(GradBucketerTest, FiresBucketsEagerlyAsGradientsArrive) {
  FakeParams fp({8, 8, 8, 8}, 3);
  auto comms = comm::make_group(1);
  GradBucketer bucketer(fp.params, comms[0], 2 * 8 * sizeof(float));
  ASSERT_EQ(bucketer.num_buckets(), 2U);
  bucketer.begin_step(1.0F, 1.0F);
  EXPECT_EQ(bucketer.buckets_fired(), 0U);
  bucketer.on_grad_ready(fp.params[3]);
  EXPECT_EQ(bucketer.buckets_fired(), 0U);  // bucket 0 half full
  bucketer.on_grad_ready(fp.params[2]);
  EXPECT_EQ(bucketer.buckets_fired(), 1U);  // bucket 0 complete -> fired
  EXPECT_GE(bucketer.first_fire_us(), 0);
  bucketer.flush();
  EXPECT_EQ(bucketer.buckets_fired(), 2U);
  bucketer.wait_all();
}

// The acceptance gate: the fused bucketed path must match the legacy
// per-tensor scale_/all_reduce_sum/scale_ pass within 1e-6 on seeded
// 2- and 4-rank steps, U-Net-ish ragged tensor sizes included.
class BucketedParity : public ::testing::TestWithParam<int> {};

TEST_P(BucketedParity, MatchesPerTensorTriplePass) {
  const int ranks = GetParam();
  const std::vector<int64_t> sizes{872, 8, 16, 1736, 16, 16, 3457, 9, 128};
  const auto weight = [](int r) { return static_cast<float>(r % 3); };
  const float inv_total = 1.0F / 7.0F;

  // Reference: the old triple pass, run on a fresh group.
  std::vector<FakeParams> ref;
  ref.reserve(static_cast<size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    ref.emplace_back(sizes, static_cast<uint64_t>(100 + r));
  }
  run_ranks(ranks, [&](int r, comm::Communicator& comm) {
    for (nn::Param& p : ref[static_cast<size_t>(r)].params) {
      p.grad->scale_(weight(r));
      comm.all_reduce_sum(p.grad->span());
      p.grad->scale_(inv_total);
    }
  });

  // Bucketed path over identical inputs (1 KiB cap -> several buckets).
  std::vector<FakeParams> fused;
  fused.reserve(static_cast<size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    fused.emplace_back(sizes, static_cast<uint64_t>(100 + r));
  }
  run_ranks(ranks, [&](int r, comm::Communicator& comm) {
    GradBucketer bucketer(fused[static_cast<size_t>(r)].params, comm, 1024);
    bucketer.begin_step(weight(r), inv_total);
    bucketer.flush();
    bucketer.wait_all();
  });

  for (int r = 0; r < ranks; ++r) {
    for (size_t i = 0; i < sizes.size(); ++i) {
      const NDArray& a = ref[static_cast<size_t>(r)].grads[i];
      const NDArray& b = fused[static_cast<size_t>(r)].grads[i];
      for (int64_t k = 0; k < a.numel(); ++k) {
        ASSERT_NEAR(a[k], b[k], 1e-6F)
            << "ranks=" << ranks << " rank=" << r << " tensor=" << i
            << " elem=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BucketedParity, ::testing::Values(2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(GradBucketerTest, BitwiseDeterministicAcrossRuns) {
  const std::vector<int64_t> sizes{300, 7, 450, 21};
  const auto run_once = [&] {
    std::vector<FakeParams> fps;
    for (int r = 0; r < 3; ++r) {
      fps.emplace_back(sizes, static_cast<uint64_t>(7 + r));
    }
    run_ranks(3, [&](int r, comm::Communicator& comm) {
      GradBucketer bucketer(fps[static_cast<size_t>(r)].params, comm, 1024);
      bucketer.begin_step(1.0F, 1.0F / 3.0F);
      // Ready-driven on rank 0, flush-driven elsewhere: launch order is
      // layout order either way, so results must still be bitwise equal.
      if (r == 0) {
        for (size_t i = sizes.size(); i-- > 0;) {
          bucketer.on_grad_ready(fps[0].params[i]);
        }
      }
      bucketer.flush();
      bucketer.wait_all();
    });
    std::vector<float> out;
    for (const NDArray& g : fps[0].grads) {
      out.insert(out.end(), g.data(), g.data() + g.numel());
    }
    return out;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(GradBucketerTest, IdleRankContributesZeroWeightGradients) {
  // Rank 1 is "idle": weight 0, no ready marks, straight to flush —
  // the result must be rank 0's gradients weighted 2/2.
  const std::vector<int64_t> sizes{64, 8};
  std::vector<FakeParams> fps;
  fps.emplace_back(sizes, 42);
  fps.emplace_back(sizes, 43);
  FakeParams expect(sizes, 42);
  run_ranks(2, [&](int r, comm::Communicator& comm) {
    GradBucketer bucketer(fps[static_cast<size_t>(r)].params, comm, 1 << 20);
    bucketer.begin_step(r == 0 ? 2.0F : 0.0F, 0.5F);
    bucketer.flush();
    bucketer.wait_all();
  });
  for (size_t i = 0; i < sizes.size(); ++i) {
    for (int64_t k = 0; k < expect.grads[i].numel(); ++k) {
      ASSERT_NEAR(fps[0].grads[i][k], expect.grads[i][k], 1e-6F);
      ASSERT_NEAR(fps[1].grads[i][k], expect.grads[i][k], 1e-6F);
    }
  }
}

TEST(GradBucketerTest, EnvOverridesConfiguredBucketBytes) {
  ASSERT_EQ(unsetenv("DMIS_BUCKET_BYTES"), 0);
  EXPECT_EQ(GradBucketer::effective_bucket_bytes(123), 123U);
  ASSERT_EQ(setenv("DMIS_BUCKET_BYTES", "4096", 1), 0);
  EXPECT_EQ(GradBucketer::effective_bucket_bytes(123), 4096U);
  ASSERT_EQ(setenv("DMIS_BUCKET_BYTES", "0", 1), 0);
  EXPECT_EQ(GradBucketer::effective_bucket_bytes(123), 0U);
  ASSERT_EQ(setenv("DMIS_BUCKET_BYTES", "not-bytes", 1), 0);
  EXPECT_THROW(GradBucketer::effective_bucket_bytes(123), InvalidArgument);
  ASSERT_EQ(unsetenv("DMIS_BUCKET_BYTES"), 0);
}

TEST(GradBucketerTest, RejectsZeroBucketBytes) {
  FakeParams fp({4}, 9);
  auto comms = comm::make_group(1);
  EXPECT_THROW(GradBucketer(fp.params, comms[0], 0), InvalidArgument);
}

// --- Compressed sync -------------------------------------------------

TEST(GradBucketerCompressTest, Fp16SyncMatchesUncompressedToHalfPrecision) {
  // Mixed layout on purpose: one direct tensor plus small packed ones,
  // so both the fused pack_scale wire path and the in-place path run.
  const int ranks = 4;
  const std::vector<int64_t> sizes{872, 8, 30000, 16, 130};
  const auto weight = [](int r) { return static_cast<float>(1 + r % 2); };
  const float inv_total = 1.0F / 6.0F;

  const auto run_mode = [&](comm::CompressMode mode) {
    std::vector<FakeParams> fps;
    for (int r = 0; r < ranks; ++r) {
      fps.emplace_back(sizes, static_cast<uint64_t>(500 + r));
    }
    run_ranks(ranks, [&](int r, comm::Communicator& comm) {
      comm::CompressOptions copts;
      copts.mode = mode;
      GradBucketer bucketer(fps[static_cast<size_t>(r)].params, comm, 4096,
                            copts);
      EXPECT_EQ(bucketer.compress_mode(), mode);
      bucketer.begin_step(weight(r), inv_total);
      bucketer.flush();
      bucketer.wait_all();
    });
    std::vector<float> out;
    for (const NDArray& g : fps[0].grads) {
      out.insert(out.end(), g.data(), g.data() + g.numel());
    }
    return out;
  };

  const auto ref = run_mode(comm::CompressMode::kNone);
  const auto fp16 = run_mode(comm::CompressMode::kFp16);
  ASSERT_EQ(ref.size(), fp16.size());
  // Each reduce hop rounds the running sum once to half precision, so
  // the error is bounded by (hops + 1) half-ULPs of the final magnitude
  // (|sum| <= 6 here -> ~3e-3 per hop across 4 ranks).
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(ref[i], fp16[i], 2e-2F) << "elem " << i;
  }
}

TEST(GradBucketerCompressTest, TopKConservesMassInResiduals) {
  // Error feedback means nothing is dropped, only delayed: after one
  // step, synced mass plus what every rank still holds in residuals
  // must equal the uncompressed mean, in total.
  const int ranks = 2;
  const std::vector<int64_t> sizes{600, 40, 200};
  const float inv = 1.0F / static_cast<float>(ranks);

  std::vector<FakeParams> ref;
  for (int r = 0; r < ranks; ++r) {
    ref.emplace_back(sizes, static_cast<uint64_t>(900 + r));
  }
  double expected_mass = 0.0;
  for (const auto& fp : ref) {
    for (const NDArray& g : fp.grads) {
      for (int64_t k = 0; k < g.numel(); ++k) expected_mass += g[k] * inv;
    }
  }

  std::vector<FakeParams> fps;
  for (int r = 0; r < ranks; ++r) {
    fps.emplace_back(sizes, static_cast<uint64_t>(900 + r));
  }
  std::vector<GradBucketer::ResidualState> residuals(ranks);
  run_ranks(ranks, [&](int r, comm::Communicator& comm) {
    comm::CompressOptions copts;
    copts.mode = comm::CompressMode::kTopK;
    copts.topk_ratio = 0.1;
    GradBucketer bucketer(fps[static_cast<size_t>(r)].params, comm, 4096,
                          copts);
    bucketer.begin_step(1.0F, inv);
    bucketer.flush();
    bucketer.wait_all();
    residuals[static_cast<size_t>(r)] = bucketer.export_residuals();
  });

  // Synced mass: every rank holds the same mean, count it once.
  double synced = 0.0;
  for (const NDArray& g : fps[0].grads) {
    for (int64_t k = 0; k < g.numel(); ++k) synced += g[k];
  }
  // Residual mass is pack-scaled (pack_scale 1 here) and still owes the
  // unpack_scale it would receive on its delayed sync.
  double held = 0.0;
  for (const auto& state : residuals) {
    for (const auto& bucket : state) {
      for (float v : bucket) held += v * inv;
    }
  }
  EXPECT_NEAR(synced + held, expected_mass, 1e-2);
  EXPECT_GT(std::fabs(held), 0.0);  // 0.1 ratio really held mass back
}

TEST(GradBucketerCompressTest, ResidualsSurviveRebuildAcrossWorldSizes) {
  // The elastic shrink path: residuals exported from a 3-rank group's
  // bucketer import cleanly into a 2-rank rebuild over the same
  // parameter list and cap (the layout is world- and codec-independent),
  // and the delayed mass drains on the next step.
  const std::vector<int64_t> sizes{300, 12, 80};
  comm::CompressOptions copts;
  copts.mode = comm::CompressMode::kTopK;
  copts.topk_ratio = 0.05;

  FakeParams fp_a(sizes, 77);
  GradBucketer::ResidualState exported;
  {
    auto comms = comm::make_group(1);
    GradBucketer a(fp_a.params, comms[0], 2048, copts);
    a.begin_step(1.0F, 1.0F);
    a.flush();
    a.wait_all();
    exported = a.export_residuals();
  }
  double exported_mass = 0.0;  // absolute mass: strictly shrinks on drain
  for (const auto& b : exported) {
    for (float v : b) exported_mass += std::fabs(v);
  }
  ASSERT_GT(exported_mass, 0.0);

  // Rebuild over a different world size; import; the state must land
  // verbatim, and a zero-gradient step must start draining it.
  std::vector<FakeParams> fps;
  fps.emplace_back(sizes, 88);
  fps.emplace_back(sizes, 89);
  std::vector<GradBucketer::ResidualState> after(2);
  run_ranks(2, [&](int r, comm::Communicator& comm) {
    auto& fp = fps[static_cast<size_t>(r)];
    GradBucketer b(fp.params, comm, 2048, copts);
    if (r == 0) {
      b.import_residuals(exported);
      EXPECT_EQ(b.export_residuals(), exported);  // landed verbatim
    }
    for (NDArray& g : fp.grads) {
      std::fill(g.data(), g.data() + g.numel(), 0.0F);
    }
    b.begin_step(1.0F, 1.0F);
    b.flush();
    b.wait_all();
    after[static_cast<size_t>(r)] = b.export_residuals();
  });
  double remaining = 0.0;
  for (const auto& b : after[0]) {
    for (float v : b) remaining += std::fabs(v);
  }
  // Some of the imported residual went out on the wire this step.
  EXPECT_LT(remaining, exported_mass);

  // A layout mismatch is a hard error, not silent corruption.
  FakeParams other({300, 12, 80, 4}, 99);
  auto comms = comm::make_group(1);
  GradBucketer c(other.params, comms[0], 2048, copts);
  EXPECT_THROW(c.import_residuals(exported), Error);
}

TEST(GradBucketerCompressTest, FailedStepRollsResidualsBack) {
  // A step that dies mid-collective is retried (or rolled back to a
  // checkpoint), so its error-feedback mutations must not survive into
  // the retry: encode() already accumulated the step's gradient into
  // the residual and zeroed the entries it put on the (undelivered)
  // wire — replaying on top of that would double-count the unsent mass
  // and lose the sent mass. The rollback must work through *both* exit
  // paths: wait_all() rethrowing a comm-worker error, and abandon().
  auto& faults = common::FaultInjector::instance();
  faults.reset();
  const std::vector<int64_t> sizes{600, 40, 200};  // one packed bucket
  comm::CompressOptions copts;
  copts.mode = comm::CompressMode::kTopK;
  copts.topk_ratio = 0.1;

  std::vector<FakeParams> fps;
  fps.emplace_back(sizes, 500);
  fps.emplace_back(sizes, 501);
  // Step 1 is one allreduce per rank; rank 1's second call — step 2's
  // bucket — poisons the group.
  faults.arm_nth_call("comm.all_reduce.r1", 2);
  std::vector<GradBucketer::ResidualState> before(2);
  std::vector<GradBucketer::ResidualState> after(2);
  // Short deadline: rank 0 must fail fast once rank 1's fault poisons
  // the group instead of waiting forever on the dead peer.
  auto comms = comm::make_group(2, /*timeout_ms=*/500);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, r = rank] {
    comm::Communicator& comm = comms[static_cast<size_t>(r)];
    GradBucketer b(fps[static_cast<size_t>(r)].params, comm, 4096, copts);
    b.begin_step(1.0F, 0.5F);
    b.flush();
    b.wait_all();  // clean step: residuals legitimately mutated
    before[static_cast<size_t>(r)] = b.export_residuals();
    b.begin_step(1.0F, 0.5F);
    b.flush();
    // Rank 1 rethrows the injected fault itself; rank 0 times out with
    // a CommError once the group is poisoned. Either way: it throws.
    EXPECT_ANY_THROW(b.wait_all());
    b.abandon();  // the recovery path calls this too; must be safe
    after[static_cast<size_t>(r)] = b.export_residuals();
    });
  }
  for (auto& t : threads) t.join();
  faults.reset();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(after[static_cast<size_t>(r)], before[static_cast<size_t>(r)])
        << "rank " << r;
  }
  // The clean step really did leave residual state to protect.
  double mass = 0.0;
  for (const auto& bucket : before[0]) {
    for (float v : bucket) mass += std::fabs(v);
  }
  EXPECT_GT(mass, 0.0);
}

TEST(GradBucketerCompressTest, UncompressedBucketerKeepsNoResidualState) {
  FakeParams fp({64, 8}, 12);
  auto comms = comm::make_group(1);
  GradBucketer bucketer(fp.params, comms[0]);
  EXPECT_EQ(bucketer.compress_mode(), comm::CompressMode::kNone);
  for (const auto& b : bucketer.export_residuals()) EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace dmis::train
