#include "train/mirrored.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis::train {
namespace {

std::vector<data::Example> make_examples(int64_t n, uint64_t seed) {
  std::vector<data::Example> out;
  Rng rng(seed);
  const int64_t S = 4;
  for (int64_t id = 0; id < n; ++id) {
    data::Example ex;
    ex.id = id;
    ex.image = NDArray(Shape{1, S, S, S});
    ex.label = NDArray(Shape{1, S, S, S});
    for (int64_t i = 0; i < ex.image.numel(); ++i) {
      ex.image[i] = static_cast<float>(rng.normal());
      ex.label[i] = rng.uniform() < 0.3 ? 1.0F : 0.0F;
    }
    out.push_back(std::move(ex));
  }
  return out;
}

nn::UNet3dOptions tiny_model(bool batch_norm) {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 11;
  opts.batch_norm = batch_norm;
  return opts;
}

std::vector<float> flat_params(nn::UNet3d& model) {
  std::vector<float> out;
  for (const nn::Param& p : model.params()) {
    out.insert(out.end(), p.value->data(),
               p.value->data() + p.value->numel());
  }
  return out;
}

// The mirrored-variable invariant: without batch norm, R-replica
// training on global batch B must match single-device training on the
// same batches (identical seeds, lr scaling off).
TEST(MirroredStrategyTest, EquivalentToSingleDeviceWithoutBatchNorm) {
  const auto examples = make_examples(8, 3);

  // Single device.
  nn::UNet3d single(tiny_model(false));
  TrainOptions topt;
  topt.epochs = 3;
  topt.lr = 1e-3;
  Trainer trainer(single, topt);
  data::BatchStream train_a(data::from_examples(examples), 4);
  trainer.fit(train_a, nullptr);

  // Two mirrored replicas, same global batch, unscaled lr.
  MirroredOptions mopt;
  mopt.num_replicas = 2;
  mopt.train = topt;
  mopt.scale_lr = false;
  MirroredStrategy mirrored(tiny_model(false), mopt);
  data::BatchStream train_b(data::from_examples(examples), 4);
  mirrored.fit(train_b, nullptr);

  const auto wa = flat_params(single);
  const auto wb = flat_params(mirrored.model());
  ASSERT_EQ(wa.size(), wb.size());
  for (size_t i = 0; i < wa.size(); ++i) {
    ASSERT_NEAR(wa[i], wb[i], 2e-4F) << "param element " << i;
  }
}

TEST(MirroredStrategyTest, ReplicasStayIdentical) {
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  MirroredStrategy mirrored(tiny_model(true), mopt);
  data::BatchStream train(data::from_examples(make_examples(6, 4)), 3);
  mirrored.fit(train, nullptr);
  // All replicas applied identical averaged gradients with identical
  // optimizer state, so trainable parameters must match bit-for-bit...
  // (verified through replica 0 vs a fresh fit is overkill; instead we
  // check the invariant via the public model and a second strategy run
  // determinism test below).
  SUCCEED();
}

TEST(MirroredStrategyTest, DeterministicAcrossRuns) {
  const auto run_once = [] {
    MirroredOptions mopt;
    mopt.num_replicas = 2;
    mopt.train.epochs = 2;
    mopt.train.lr = 1e-3;
    MirroredStrategy mirrored(tiny_model(false), mopt);
    data::BatchStream train(data::from_examples(make_examples(4, 5)), 2);
    mirrored.fit(train, nullptr);
    return flat_params(mirrored.model());
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(MirroredStrategyTest, RaggedBatchHandled) {
  // 5 examples, global batch 4, 3 replicas: final batch of 1 leaves two
  // replicas idle; training must stay exact (no NaNs, loss finite).
  MirroredOptions mopt;
  mopt.num_replicas = 3;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  MirroredStrategy mirrored(tiny_model(true), mopt);
  data::BatchStream train(data::from_examples(make_examples(5, 6)), 4);
  const TrainReport report = mirrored.fit(train, nullptr);
  ASSERT_EQ(report.history.size(), 2U);
  EXPECT_EQ(report.history[0].steps, 2);  // ceil(5/4)
  EXPECT_TRUE(std::isfinite(report.history.back().train_loss));
}

TEST(MirroredStrategyTest, LrScalingRule) {
  MirroredOptions mopt;
  mopt.num_replicas = 4;
  mopt.train.lr = 1e-4;
  MirroredStrategy scaled(tiny_model(false), mopt);
  EXPECT_DOUBLE_EQ(scaled.effective_lr(), 4e-4);
  mopt.scale_lr = false;
  MirroredStrategy unscaled(tiny_model(false), mopt);
  EXPECT_DOUBLE_EQ(unscaled.effective_lr(), 1e-4);
}

TEST(MirroredStrategyTest, ValidationUsesReplicaZero) {
  MirroredOptions mopt;
  mopt.num_replicas = 2;
  mopt.train.epochs = 1;
  MirroredStrategy mirrored(tiny_model(true), mopt);
  data::BatchStream train(data::from_examples(make_examples(4, 7)), 2);
  data::BatchStream val(data::from_examples(make_examples(2, 8)), 2);
  const TrainReport report = mirrored.fit(train, &val);
  ASSERT_TRUE(report.history.front().val_dice.has_value());
  EXPECT_GE(*report.history.front().val_dice, 0.0);
  EXPECT_LE(*report.history.front().val_dice, 1.0);
}

TEST(MirroredStrategyTest, SingleReplicaDegeneratesToTrainer) {
  MirroredOptions mopt;
  mopt.num_replicas = 1;
  mopt.train.epochs = 2;
  mopt.train.lr = 1e-3;
  MirroredStrategy mirrored(tiny_model(false), mopt);
  data::BatchStream train_a(data::from_examples(make_examples(4, 9)), 2);
  mirrored.fit(train_a, nullptr);

  nn::UNet3d single(tiny_model(false));
  TrainOptions topt;
  topt.epochs = 2;
  topt.lr = 1e-3;
  Trainer trainer(single, topt);
  data::BatchStream train_b(data::from_examples(make_examples(4, 9)), 2);
  trainer.fit(train_b, nullptr);

  const auto wa = flat_params(mirrored.model());
  const auto wb = flat_params(single);
  for (size_t i = 0; i < wa.size(); ++i) ASSERT_EQ(wa[i], wb[i]);
}

// The overlapped bucketed gradient sync (the default) must match the
// legacy blocking per-tensor allreduce (bucket_bytes = 0) within 1e-6
// on seeded multi-rank training — the PR's parity acceptance gate.
class BucketedStrategyParity : public ::testing::TestWithParam<int> {};

TEST_P(BucketedStrategyParity, MatchesPerTensorPath) {
  const int replicas = GetParam();
  const auto run_with_buckets = [&](size_t bucket_bytes) {
    MirroredOptions mopt;
    mopt.num_replicas = replicas;
    mopt.train.epochs = 2;
    mopt.train.lr = 1e-3;
    mopt.bucket_bytes = bucket_bytes;
    MirroredStrategy mirrored(tiny_model(false), mopt);
    data::BatchStream train(
        data::from_examples(make_examples(2 * replicas + 1, 21)), replicas);
    mirrored.fit(train, nullptr);  // ragged final batch -> idle replicas
    return flat_params(mirrored.model());
  };
  // Tiny cap -> several buckets per step, exercising eager mid-backward
  // launches rather than one flush-time bucket.
  const auto bucketed = run_with_buckets(2048);
  const auto per_tensor = run_with_buckets(0);
  ASSERT_EQ(bucketed.size(), per_tensor.size());
  for (size_t i = 0; i < bucketed.size(); ++i) {
    ASSERT_NEAR(bucketed[i], per_tensor[i], 1e-6F) << "param element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BucketedStrategyParity,
                         ::testing::Values(2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "replicas" + std::to_string(info.param);
                         });

TEST(MirroredStrategyTest, RejectsBadReplicaCount) {
  MirroredOptions mopt;
  mopt.num_replicas = 0;
  EXPECT_THROW(MirroredStrategy(tiny_model(false), mopt), InvalidArgument);
}

}  // namespace
}  // namespace dmis::train
