#include "train/pipeline_parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace dmis::train {
namespace {

std::vector<data::Example> cube_examples(int64_t n, uint64_t seed) {
  std::vector<data::Example> out;
  Rng rng(seed);
  const int64_t S = 8;
  for (int64_t id = 0; id < n; ++id) {
    data::Example ex;
    ex.id = id;
    ex.image = NDArray(Shape{1, S, S, S});
    ex.label = NDArray(Shape{1, S, S, S});
    const int64_t off = rng.uniform_int(1, 3);
    for (int64_t z = 0; z < S; ++z) {
      for (int64_t y = 0; y < S; ++y) {
        for (int64_t x = 0; x < S; ++x) {
          const bool inside = z >= off && z < off + 4 && y >= off &&
                              y < off + 4 && x >= off && x < off + 4;
          const int64_t i = (z * S + y) * S + x;
          ex.image[i] = (inside ? 1.0F : -1.0F) +
                        static_cast<float>(rng.normal(0.0, 0.1));
          ex.label[i] = inside ? 1.0F : 0.0F;
        }
      }
    }
    out.push_back(std::move(ex));
  }
  return out;
}

nn::UNet3dOptions tiny_model() {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = 31;
  return opts;
}

TEST(PipelineParallelStrategyTest, TrainsToConvergence) {
  PipelineParallelOptions popt;
  popt.num_microbatches = 2;
  popt.train.epochs = 60;
  popt.train.lr = 1e-2;
  PipelineParallelStrategy strategy(tiny_model(), popt);
  data::BatchStream train(data::from_examples(cube_examples(6, 1)), 4);
  data::BatchStream val(data::from_examples(cube_examples(2, 99)), 2);
  const TrainReport report = strategy.fit(train, &val);
  EXPECT_LT(report.history.back().train_loss,
            0.6 * report.history.front().train_loss);
  EXPECT_GT(report.best_val_dice, 0.7);
}

TEST(PipelineParallelStrategyTest, MatchesPlainTrainerWithoutBatchNorm) {
  nn::UNet3dOptions model_opts = tiny_model();
  model_opts.batch_norm = false;

  TrainOptions topt;
  topt.epochs = 3;
  topt.lr = 1e-3;

  nn::UNet3d mono(model_opts);
  Trainer trainer(mono, topt);
  data::BatchStream train_a(data::from_examples(cube_examples(6, 2)), 4);
  const TrainReport ra = trainer.fit(train_a, nullptr);

  PipelineParallelOptions popt;
  popt.num_microbatches = 2;
  popt.train = topt;
  PipelineParallelStrategy strategy(model_opts, popt);
  data::BatchStream train_b(data::from_examples(cube_examples(6, 2)), 4);
  const TrainReport rb = strategy.fit(train_b, nullptr);

  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t e = 0; e < ra.history.size(); ++e) {
    EXPECT_NEAR(ra.history[e].train_loss, rb.history[e].train_loss, 1e-4)
        << "epoch " << e;
  }
}

TEST(PipelineParallelStrategyTest, EvaluateInRange) {
  PipelineParallelOptions popt;
  popt.num_microbatches = 2;
  popt.train.epochs = 1;
  PipelineParallelStrategy strategy(tiny_model(), popt);
  data::BatchStream val(data::from_examples(cube_examples(3, 5)), 2);
  const double dice = strategy.evaluate(val);
  EXPECT_GE(dice, 0.0);
  EXPECT_LE(dice, 1.0);
}

TEST(PipelineParallelStrategyTest, RejectsBadOptions) {
  PipelineParallelOptions popt;
  popt.num_microbatches = 0;
  EXPECT_THROW(PipelineParallelStrategy(tiny_model(), popt),
               InvalidArgument);
  PipelineParallelOptions zero_epochs;
  zero_epochs.train.epochs = 0;
  EXPECT_THROW(PipelineParallelStrategy(tiny_model(), zero_epochs),
               InvalidArgument);
}

}  // namespace
}  // namespace dmis::train
