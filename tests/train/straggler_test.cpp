#include "train/straggler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dmis::train {
namespace {

// Timestamps must be anchored at the real clock: the rolling windows
// inside the detector were created "now", and the `_at` hooks only make
// the window arithmetic deterministic, not rebase time.
class StragglerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t0_ = obs::Tracer::now_us();
    ::unsetenv("DMIS_STRAGGLER_FACTOR");
  }
  void TearDown() override { ::unsetenv("DMIS_STRAGGLER_FACTOR"); }

  /// Feeds `n` step samples per rank; `slow_rank` takes slow_us, every
  /// other rank fast_us.
  static void feed(StragglerDetector& d, int64_t t, int n, int slow_rank,
                   double slow_us, double fast_us) {
    for (int i = 0; i < n; ++i) {
      for (int r = 0; r < d.world(); ++r) {
        d.record_step_at(t, r, r == slow_rank ? slow_us : fast_us);
      }
    }
  }

  int64_t t0_ = 0;
};

TEST_F(StragglerTest, FlagsTheSlowRank) {
  StragglerDetector d(4);
  feed(d, t0_, /*n=*/10, /*slow_rank=*/1, /*slow_us=*/3000.0,
       /*fast_us=*/1000.0);
  // The straggler's own sync wait is short; its peers stall.
  for (int i = 0; i < 10; ++i) {
    for (int r = 0; r < 4; ++r) {
      d.record_wait_at(t0_, r, r == 1 ? 100.0 : 2000.0);
    }
  }

  const auto report = d.check_at(t0_);
  EXPECT_TRUE(report.decided);
  EXPECT_TRUE(report.flagged);
  EXPECT_EQ(report.rank, 1);
  EXPECT_GE(report.ratio, 2.0);
  EXPECT_GT(report.worst_p50, report.median_p50);
  // worst_wait_p50 belongs to the *straggler*, whose wait is short.
  EXPECT_LT(report.worst_wait_p50, 1000.0);
}

TEST_F(StragglerTest, BalancedRanksAreNotFlagged) {
  StragglerDetector d(4);
  feed(d, t0_, 10, /*slow_rank=*/-1, 0.0, /*fast_us=*/1000.0);
  const auto report = d.check_at(t0_);
  EXPECT_TRUE(report.decided);
  EXPECT_FALSE(report.flagged);
  EXPECT_NEAR(report.ratio, 1.0, 1e-9);
}

TEST_F(StragglerTest, UndecidedBelowMinSamples) {
  StragglerDetector d(4);
  // min_samples defaults to 8; 5 per rank is not a verdict.
  feed(d, t0_, 5, 1, 9000.0, 1000.0);
  const auto report = d.check_at(t0_);
  EXPECT_FALSE(report.decided);
  EXPECT_FALSE(report.flagged);
}

TEST_F(StragglerTest, UndecidedWithOneRankEvenWithSamples) {
  StragglerDetector d(1);
  for (int i = 0; i < 20; ++i) d.record_step_at(t0_, 0, 1000.0);
  const auto report = d.check_at(t0_);
  EXPECT_FALSE(report.decided);
  EXPECT_FALSE(report.flagged);
}

TEST_F(StragglerTest, SamplesAgeOutOfTheWindow) {
  // One old slow phase on rank 1, then a full window of silence: the
  // verdict must go back to undecided, not keep flagging stale history.
  StragglerOptions opts;
  opts.window_us = 10'000'000;
  StragglerDetector d(4, opts);
  feed(d, t0_, 10, 1, 5000.0, 1000.0);
  EXPECT_TRUE(d.check_at(t0_).flagged);
  EXPECT_FALSE(d.check_at(t0_ + 2 * opts.window_us).decided);
}

TEST_F(StragglerTest, CheckUpdatesRegistryMetrics) {
  auto& reg = obs::MetricsRegistry::instance();
  const int64_t checks_before = reg.counter("train.straggler.checks").value();
  const int64_t flags_before = reg.counter("train.straggler.flags").value();

  StragglerDetector d(4);
  feed(d, t0_, 10, 2, 4000.0, 1000.0);
  const auto report = d.check_at(t0_);
  ASSERT_TRUE(report.flagged);
  EXPECT_EQ(report.rank, 2);

  EXPECT_EQ(reg.counter("train.straggler.checks").value(),
            checks_before + 1);
  EXPECT_EQ(reg.counter("train.straggler.flags").value(), flags_before + 1);
  EXPECT_DOUBLE_EQ(reg.gauge("train.straggler.rank").value(), 2.0);
  EXPECT_GT(reg.gauge("train.straggler.ratio").value(), 1.0);
}

TEST_F(StragglerTest, ThresholdComesFromEnv) {
  EXPECT_DOUBLE_EQ(StragglerOptions::from_env().threshold, 2.0);

  ::setenv("DMIS_STRAGGLER_FACTOR", "3.5", 1);
  EXPECT_DOUBLE_EQ(StragglerOptions::from_env().threshold, 3.5);

  // A factor <= 1 would flag every group; keep the default instead.
  ::setenv("DMIS_STRAGGLER_FACTOR", "0.5", 1);
  EXPECT_DOUBLE_EQ(StragglerOptions::from_env().threshold, 2.0);

  ::setenv("DMIS_STRAGGLER_FACTOR", "junk", 1);
  EXPECT_DOUBLE_EQ(StragglerOptions::from_env().threshold, 2.0);
}

TEST_F(StragglerTest, ThresholdGatesTheVerdict) {
  StragglerOptions opts;
  opts.threshold = 4.0;
  StragglerDetector d(4, opts);
  // Ratio ~3x: flagged at the default 2.0, clean at 4.0.
  feed(d, t0_, 10, 1, 3000.0, 1000.0);
  const auto report = d.check_at(t0_);
  EXPECT_TRUE(report.decided);
  EXPECT_FALSE(report.flagged);
  EXPECT_GT(report.ratio, 2.0);
}

TEST_F(StragglerTest, TwoRankGroupUsesUpperMedian) {
  // With two ranks the upper median IS the worst rank, so the ratio
  // pins at 1.0 — a deliberate guard against flagging half of a pair.
  StragglerDetector d(2);
  feed(d, t0_, 10, 1, 9000.0, 1000.0);
  const auto report = d.check_at(t0_);
  EXPECT_TRUE(report.decided);
  EXPECT_FALSE(report.flagged);
  EXPECT_NEAR(report.ratio, 1.0, 1e-9);
}

}  // namespace
}  // namespace dmis::train
