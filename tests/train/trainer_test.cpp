#include "train/trainer.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/check.hpp"
#include "nn/checkpoint.hpp"
#include "tensor/rng.hpp"

namespace dmis::train {
namespace {

// Builds a tiny learnable dataset: bright cube on dark background, one
// channel, 8^3 volumes, with per-example noise.
std::vector<data::Example> cube_examples(int64_t n, uint64_t seed) {
  std::vector<data::Example> out;
  Rng rng(seed);
  const int64_t S = 8;
  for (int64_t id = 0; id < n; ++id) {
    data::Example ex;
    ex.id = id;
    ex.image = NDArray(Shape{1, S, S, S});
    ex.label = NDArray(Shape{1, S, S, S});
    const int64_t off = rng.uniform_int(1, 3);
    for (int64_t z = 0; z < S; ++z) {
      for (int64_t y = 0; y < S; ++y) {
        for (int64_t x = 0; x < S; ++x) {
          const bool inside = z >= off && z < off + 4 && y >= off &&
                              y < off + 4 && x >= off && x < off + 4;
          const int64_t i = (z * S + y) * S + x;
          ex.image[i] = (inside ? 1.0F : -1.0F) +
                        static_cast<float>(rng.normal(0.0, 0.1));
          ex.label[i] = inside ? 1.0F : 0.0F;
        }
      }
    }
    out.push_back(std::move(ex));
  }
  return out;
}

nn::UNet3dOptions tiny_model(uint64_t seed = 7, bool batch_norm = true) {
  nn::UNet3dOptions opts;
  opts.in_channels = 1;
  opts.base_filters = 2;
  opts.depth = 2;
  opts.seed = seed;
  opts.batch_norm = batch_norm;
  return opts;
}

TEST(TrainerTest, LossDecreasesAndDiceRises) {
  nn::UNet3d model(tiny_model());
  TrainOptions opts;
  opts.epochs = 30;
  opts.lr = 5e-3;
  Trainer trainer(model, opts);
  data::BatchStream train(data::from_examples(cube_examples(6, 1)), 2);
  data::BatchStream val(data::from_examples(cube_examples(2, 99)), 2);
  const TrainReport report = trainer.fit(train, &val);
  ASSERT_EQ(report.history.size(), 30U);
  EXPECT_LT(report.history.back().train_loss,
            0.6 * report.history.front().train_loss);
  EXPECT_GT(report.best_val_dice, 0.7);
  EXPECT_EQ(report.history.front().steps, 3);  // ceil(6/2)
  EXPECT_EQ(report.total_steps, 90);
}

TEST(TrainerTest, CallbackCanStopEarly) {
  nn::UNet3d model(tiny_model());
  TrainOptions opts;
  opts.epochs = 50;
  Trainer trainer(model, opts);
  data::BatchStream train(data::from_examples(cube_examples(4, 2)), 2);
  int epochs_seen = 0;
  const TrainReport report =
      trainer.fit(train, nullptr, [&](const EpochStats& stats) {
        ++epochs_seen;
        return stats.epoch < 4;  // stop after 5 epochs
      });
  EXPECT_EQ(epochs_seen, 5);
  EXPECT_EQ(report.history.size(), 5U);
}

TEST(TrainerTest, CyclicLrFollowsTriangle) {
  nn::UNet3d model(tiny_model());
  TrainOptions opts;
  opts.epochs = 4;
  opts.lr = 1e-3;
  opts.cyclic = CyclicLrSpec{1e-4, 1e-3, 4};
  Trainer trainer(model, opts);
  data::BatchStream train(data::from_examples(cube_examples(4, 3)), 1);
  std::vector<double> lrs;
  trainer.fit(train, nullptr, [&](const EpochStats& stats) {
    lrs.push_back(stats.lr);
    return true;
  });
  ASSERT_EQ(lrs.size(), 4U);
  // 4 steps/epoch, half-cycle 4 steps: epoch ends alternate between the
  // rising flank (high) and the falling flank (low), period 2 epochs.
  EXPECT_GT(lrs[0], lrs[1]);
  EXPECT_DOUBLE_EQ(lrs[0], lrs[2]);
  EXPECT_DOUBLE_EQ(lrs[1], lrs[3]);
}

TEST(TrainerTest, QuadraticDiceAlsoTrains) {
  nn::UNet3d model(tiny_model());
  TrainOptions opts;
  opts.epochs = 20;
  opts.lr = 5e-3;
  opts.loss = "qdice";
  Trainer trainer(model, opts);
  data::BatchStream train(data::from_examples(cube_examples(4, 4)), 2);
  const TrainReport report = trainer.fit(train, nullptr);
  EXPECT_LT(report.history.back().train_loss,
            report.history.front().train_loss);
}

TEST(TrainerTest, EvaluateReturnsPerSampleMeanDice) {
  nn::UNet3d model(tiny_model());
  TrainOptions opts;
  Trainer trainer(model, opts);
  data::BatchStream val(data::from_examples(cube_examples(3, 5)), 2);
  const double dice = trainer.evaluate(val);
  EXPECT_GE(dice, 0.0);
  EXPECT_LE(dice, 1.0);
  // Stream usable again (reset happened).
  EXPECT_NEAR(trainer.evaluate(val), dice, 1e-12);
}

TEST(TrainerTest, CheckpointsBestWeights) {
  const auto path =
      std::filesystem::temp_directory_path() /
      ("dmis_trainer_ckpt_" + std::to_string(::getpid()) + ".bin");
  std::filesystem::remove(path);

  nn::UNet3d model(tiny_model(3));
  TrainOptions opts;
  opts.epochs = 8;
  opts.lr = 5e-3;
  opts.checkpoint_path = path.string();
  Trainer trainer(model, opts);
  data::BatchStream train(data::from_examples(cube_examples(4, 6)), 2);
  data::BatchStream val(data::from_examples(cube_examples(2, 60)), 2);
  const TrainReport report = trainer.fit(train, &val);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Restoring into a fresh (differently seeded) model must reproduce
  // the checkpointed validation Dice — including the batch-norm running
  // statistics, which checkpoint_params() captures.
  nn::UNet3d restored(tiny_model(99));
  auto params = restored.checkpoint_params();
  nn::load_checkpoint(path.string(), params);
  data::BatchStream val2(data::from_examples(cube_examples(2, 60)), 2);
  const double dice = evaluate_dice(restored, val2);
  EXPECT_NEAR(dice, report.best_val_dice, 1e-6);
  std::filesystem::remove(path);
}

TEST(TrainerTest, EarlyStoppingOnPlateau) {
  nn::UNet3d model(tiny_model(3));
  TrainOptions opts;
  opts.epochs = 100;
  opts.lr = 1e-9;  // effectively frozen -> immediate plateau
  opts.early_stop_patience = 3;
  Trainer trainer(model, opts);
  data::BatchStream train(data::from_examples(cube_examples(4, 7)), 2);
  data::BatchStream val(data::from_examples(cube_examples(2, 70)), 2);
  const TrainReport report = trainer.fit(train, &val);
  EXPECT_LT(report.history.size(), 10U);  // stopped long before 100
}

TEST(TrainerTest, GradAccumulationMatchesLargeBatch) {
  // Batch 4 with accumulation 1 must equal batch 2 with accumulation 2
  // when the same 4 examples flow in the same order (no batch norm, so
  // no cross-sample coupling).
  const auto examples = cube_examples(4, 8);
  nn::UNet3dOptions mopts = tiny_model(3, /*batch_norm=*/false);

  nn::UNet3d big(mopts);
  TrainOptions big_opts;
  big_opts.epochs = 2;
  big_opts.lr = 1e-3;
  Trainer big_trainer(big, big_opts);
  data::BatchStream big_stream(data::from_examples(examples), 4);
  big_trainer.fit(big_stream, nullptr);

  nn::UNet3d accum(mopts);
  TrainOptions accum_opts = big_opts;
  accum_opts.grad_accumulation = 2;
  Trainer accum_trainer(accum, accum_opts);
  data::BatchStream accum_stream(data::from_examples(examples), 2);
  accum_trainer.fit(accum_stream, nullptr);

  auto big_params = big.params();
  auto accum_params = accum.params();
  for (size_t i = 0; i < big_params.size(); ++i) {
    for (int64_t j = 0; j < big_params[i].value->numel(); ++j) {
      ASSERT_NEAR((*big_params[i].value)[j], (*accum_params[i].value)[j],
                  2e-4F)
          << big_params[i].name << " element " << j;
    }
  }
}

TEST(TrainerTest, RejectsBadOptions) {
  nn::UNet3d model(tiny_model());
  TrainOptions opts;
  opts.epochs = 0;
  EXPECT_THROW(Trainer(model, opts), InvalidArgument);
  TrainOptions bad_loss;
  bad_loss.loss = "focal";
  EXPECT_THROW(Trainer(model, bad_loss), InvalidArgument);
  TrainOptions bad_accum;
  bad_accum.grad_accumulation = 0;
  EXPECT_THROW(Trainer(model, bad_accum), InvalidArgument);
}

}  // namespace
}  // namespace dmis::train
