// dmis_top: live terminal view of a running dmis process.
//
// Polls the embedded telemetry exporter (obs::TelemetryServer,
// DMIS_OBS_PORT) and renders a compact table: tune progress, serving
// load (queue depth, volumes/sec and shed/sec derived from successive
// scrapes), elastic world size, and per-rank step/wait quantiles from
// the straggler detector's rolling histograms.
//
//   dmis_top --port 9464 [--host 127.0.0.1] [--interval-ms 1000] [--once]
//
// --once takes a single scrape and prints without clearing the screen
// (scriptable; tools/verify.sh uses it to validate a live sweep).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  bool once = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s --port PORT [--host HOST] [--interval-ms MS] "
               "[--once]\n",
               argv0);
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  if (const char* env = std::getenv("DMIS_OBS_PORT");
      env != nullptr && *env != '\0') {
    opts.port = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = std::atoi(need_value());
    } else if (arg == "--host") {
      opts.host = need_value();
    } else if (arg == "--interval-ms") {
      opts.interval_ms = std::atoi(need_value());
    } else if (arg == "--once") {
      opts.once = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      usage(argv[0], 2);
    }
  }
  if (opts.port <= 0 || opts.port > 65535) {
    std::fprintf(stderr, "dmis_top: need --port (or DMIS_OBS_PORT)\n");
    std::exit(2);
  }
  if (opts.interval_ms < 100) opts.interval_ms = 100;
  return opts;
}

/// Minimal HTTP GET over a fresh connection; returns the body or
/// nullopt on any failure (target not up yet, mid-poll exit, ...).
std::optional<std::string> http_get(const std::string& host, int port,
                                    const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  if (response.compare(0, 12, "HTTP/1.1 200") != 0 &&
      response.compare(0, 12, "HTTP/1.1 503") != 0) {
    return std::nullopt;
  }
  return response.substr(body + 4);
}

/// One parsed scrape: samples keyed by "name" or "name|rank".
struct Scrape {
  std::map<std::string, double> samples;

  double get(const std::string& key, double fallback = 0.0) const {
    const auto it = samples.find(key);
    return it == samples.end() ? fallback : it->second;
  }

  /// rank -> value for samples of `name` carrying a rank label.
  std::map<int, double> by_rank(const std::string& name) const {
    std::map<int, double> out;
    const std::string prefix = name + "|";
    for (auto it = samples.lower_bound(prefix);
         it != samples.end() && it->first.compare(0, prefix.size(), prefix) ==
                                    0;
         ++it) {
      out[std::atoi(it->first.c_str() + prefix.size())] = it->second;
    }
    return out;
  }
};

Scrape parse_prometheus(const std::string& text) {
  Scrape scrape;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string key = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    const size_t brace = key.find('{');
    if (brace != std::string::npos) {
      const std::string labels = key.substr(brace);
      key.resize(brace);
      const size_t rank = labels.find("rank=\"");
      if (rank != std::string::npos) {
        const size_t start = rank + 6;
        const size_t end = labels.find('"', start);
        if (end != std::string::npos) {
          key += "|" + labels.substr(start, end - start);
        }
      }
    }
    scrape.samples[key] = value;
  }
  return scrape;
}

void render(const Scrape& now, const Scrape* prev, double dt_s,
            const Options& opts) {
  if (!opts.once) std::fputs("\x1b[2J\x1b[H", stdout);
  std::printf("dmis_top — %s:%d every %d ms\n\n", opts.host.c_str(),
              opts.port, opts.interval_ms);

  const double completed = now.get("dmis_tune_trials_completed");
  const double failed = now.get("dmis_tune_trials_failed");
  const double attempts = now.get("dmis_tune_attempts");
  const double transient = now.get("dmis_tune_transient_failures");
  const double running =
      std::max(0.0, attempts - completed - failed - transient);
  std::printf("tune    trials: %3.0f running  %3.0f completed  %3.0f failed  "
              "(%.0f attempts, %.0f transient)\n",
              running, completed, failed, attempts, transient);

  const auto rate = [&](const char* name) -> double {
    if (prev == nullptr || dt_s <= 0.0) return 0.0;
    return std::max(0.0, (now.get(name) - prev->get(name)) / dt_s);
  };
  std::printf("serve   queue %3.0f  workers %2.0f  health %1.0f  |  "
              "%6.1f vol/s  %6.1f shed/s  %.0f completed\n",
              now.get("dmis_serve_queue_depth"),
              now.get("dmis_serve_workers"), now.get("dmis_serve_health"),
              rate("dmis_serve_completed"), rate("dmis_serve_shed"),
              now.get("dmis_serve_completed"));
  // Gradient-sync wire compression (DMIS_COMPRESS): cumulative
  // logical-to-wire byte ratio, "off" until the first compressed sync.
  char compress[16];
  const double cratio = now.get("dmis_comm_compress_ratio");
  if (cratio > 0.0) {
    std::snprintf(compress, sizeof(compress), "%.2fx", cratio);
  } else {
    std::snprintf(compress, sizeof(compress), "off");
  }
  std::printf("train   steps %6.0f (%5.1f/s)  epochs %4.0f  world %2.0f  "
              "straggler ratio %.2f  compress %s\n\n",
              now.get("dmis_train_steps"), rate("dmis_train_steps"),
              now.get("dmis_train_epochs"),
              now.get("dmis_train_elastic_world_size"),
              now.get("dmis_train_straggler_ratio"), compress);

  const std::map<int, double> p50 = now.by_rank("dmis_train_rank_step_us_p50");
  if (!p50.empty()) {
    const std::map<int, double> p99 =
        now.by_rank("dmis_train_rank_step_us_p99");
    const std::map<int, double> wait =
        now.by_rank("dmis_train_rank_wait_us_p50");
    std::printf("rank    step p50 (us)   step p99 (us)   wait p50 (us)\n");
    for (const auto& [rank, v] : p50) {
      const auto find = [&](const std::map<int, double>& m) {
        const auto it = m.find(rank);
        return it == m.end() ? 0.0 : it->second;
      };
      std::printf("%4d    %13.0f   %13.0f   %13.0f\n", rank, v, find(p99),
                  find(wait));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);

  std::optional<Scrape> prev;
  int failures = 0;
  for (;;) {
    const std::optional<std::string> body =
        http_get(opts.host, opts.port, "/metrics");
    if (!body.has_value()) {
      if (opts.once) {
        std::fprintf(stderr, "dmis_top: no exporter at %s:%d\n",
                     opts.host.c_str(), opts.port);
        return 1;
      }
      if (++failures >= 5) {
        std::fprintf(stderr,
                     "dmis_top: lost contact with %s:%d (5 failed polls)\n",
                     opts.host.c_str(), opts.port);
        return 1;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.interval_ms));
      continue;
    }
    failures = 0;
    const Scrape scrape = parse_prometheus(*body);
    render(scrape, prev.has_value() ? &*prev : nullptr,
           static_cast<double>(opts.interval_ms) / 1000.0, opts);
    if (opts.once) return 0;
    prev = scrape;
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
  }
}
