#!/usr/bin/env bash
# Repo verification: the tier-1 build + full test suite, then a
# ThreadSanitizer pass over the concurrency-heavy suites (raylite tasks/
# actors/tune retries, comm ring collectives, the fault injector, the
# telemetry registry/tracer, and the chaos integration sweep), where
# data races would live, then a traced tune_search smoke that checks the
# telemetry exports are valid, non-empty JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== tsan: raylite + comm + obs suites =="
cmake -B build-tsan -S . -DDMIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" \
  --target raylite_test comm_test common_test obs_test chaos_test
for t in raylite_test comm_test common_test obs_test chaos_test; do
  echo "-- tsan: ${t}"
  ./build-tsan/tests/"${t}"
done

echo "== telemetry: traced example smokes =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
DMIS_TRACE="${SMOKE_DIR}/tune_trace.json" \
  DMIS_METRICS="${SMOKE_DIR}/tune_metrics.jsonl" \
  ./build/examples/tune_search 2 >/dev/null
DMIS_TRACE="${SMOKE_DIR}/dp_trace.json" \
  ./build/examples/data_parallel 2 >/dev/null
python3 - "${SMOKE_DIR}" <<'EOF'
import json, sys

smoke_dir = sys.argv[1]

def span_names(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    assert events, f"{path}: trace has no events"
    return len(events), {e["name"] for e in events}

n_tune, tune = span_names(f"{smoke_dir}/tune_trace.json")
for required in ("tune.trial", "tune.queue_wait", "train.step",
                 "train.forward", "data.load"):
    assert required in tune, f"tune trace missing {required!r}: {sorted(tune)}"

n_dp, dp = span_names(f"{smoke_dir}/dp_trace.json")
for required in ("comm.allreduce", "comm.allreduce.reduce_scatter",
                 "comm.allreduce.all_gather"):
    assert required in dp, f"dp trace missing {required!r}: {sorted(dp)}"

with open(f"{smoke_dir}/tune_metrics.jsonl") as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert lines, "metrics dump is empty"
counters = {m["name"]: m["value"] for m in lines if m["type"] == "counter"}
assert counters.get("tune.trials_completed", 0) > 0, counters

print(f"tune trace OK ({n_tune} events), dp trace OK ({n_dp} events), "
      f"metrics OK ({len(lines)} instruments)")
EOF

echo "verify OK"
