#!/usr/bin/env bash
# Repo verification: the tier-1 build + full test suite (repeated with
# DMIS_KERNEL=naive for the conv reference backend), then an
# AddressSanitizer pass over the kernel-heavy suites (SGEMM/im2col, conv
# parity and gradchecks — where indexing bugs would scribble), a
# ThreadSanitizer pass over the concurrency-heavy suites (raylite tasks/
# actors/tune retries, comm ring collectives, the fault injector, the
# telemetry registry/tracer, and the chaos integration sweep), where
# data races would live, then a traced tune_search smoke that checks the
# telemetry exports are valid, non-empty JSON, and a conv benchmark run
# that regenerates BENCH_conv3d.json and asserts the gemm backend beats
# naive by the floor the optimization PR promised.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== tier-1 again under the naive conv backend =="
DMIS_KERNEL=naive ./build/tests/nn_test --gtest_brief=1

echo "== asan: gemm/im2col + conv parity suites =="
cmake -B build-asan -S . -DDMIS_SANITIZE=address >/dev/null
cmake --build build-asan -j"${JOBS}" --target tensor_test nn_test
./build-asan/tests/tensor_test --gtest_filter='Shapes/*:Sgemm*:Geometries/*:Im2col*'
for backend in gemm naive; do
  echo "-- asan: nn_test conv suites (DMIS_KERNEL=${backend})"
  DMIS_KERNEL="${backend}" ./build-asan/tests/nn_test \
    --gtest_filter='ConvParity*:Grid/*:Conv3d*:ConvTranspose3d*:Sweep/*'
done

echo "== tsan: raylite + comm + obs suites =="
cmake -B build-tsan -S . -DDMIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" \
  --target raylite_test comm_test common_test obs_test chaos_test
for t in raylite_test comm_test common_test obs_test chaos_test; do
  echo "-- tsan: ${t}"
  ./build-tsan/tests/"${t}"
done

echo "== telemetry: traced example smokes =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
DMIS_TRACE="${SMOKE_DIR}/tune_trace.json" \
  DMIS_METRICS="${SMOKE_DIR}/tune_metrics.jsonl" \
  ./build/examples/tune_search 2 >/dev/null
DMIS_TRACE="${SMOKE_DIR}/dp_trace.json" \
  ./build/examples/data_parallel 2 >/dev/null
python3 - "${SMOKE_DIR}" <<'EOF'
import json, sys

smoke_dir = sys.argv[1]

def span_names(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    assert events, f"{path}: trace has no events"
    return len(events), {e["name"] for e in events}

n_tune, tune = span_names(f"{smoke_dir}/tune_trace.json")
for required in ("tune.trial", "tune.queue_wait", "train.step",
                 "train.forward", "data.load"):
    assert required in tune, f"tune trace missing {required!r}: {sorted(tune)}"

n_dp, dp = span_names(f"{smoke_dir}/dp_trace.json")
for required in ("comm.allreduce", "comm.allreduce.reduce_scatter",
                 "comm.allreduce.all_gather"):
    assert required in dp, f"dp trace missing {required!r}: {sorted(dp)}"

with open(f"{smoke_dir}/tune_metrics.jsonl") as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert lines, "metrics dump is empty"
counters = {m["name"]: m["value"] for m in lines if m["type"] == "counter"}
assert counters.get("tune.trials_completed", 0) > 0, counters

print(f"tune trace OK ({n_tune} events), dp trace OK ({n_dp} events), "
      f"metrics OK ({len(lines)} instruments)")
EOF

echo "== bench: conv kernels, gemm vs naive =="
./build/bench/bench_conv3d --benchmark_filter='Conv' \
  --benchmark_min_time=0.1 \
  --benchmark_out=BENCH_conv3d.json --benchmark_out_format=json \
  >/dev/null
python3 - BENCH_conv3d.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
times = {b["name"]: b["real_time"] for b in bench["benchmarks"]}

# Benchmark names are <case>/<channels>/<backend> with backend 0=naive,
# 1=gemm. The gemm path must hold a conservative floor of its measured
# (5-30x) advantage; 3x catches a real regression without flaking.
checked = 0
for name, naive in sorted(times.items()):
    if not name.endswith("/0"):
        continue
    gemm = times[name[:-2] + "/1"]
    ratio = naive / gemm
    status = "OK" if ratio >= 3.0 else "TOO SLOW"
    print(f"{name[:-2]}: naive {naive:.3f}ms / gemm {gemm:.3f}ms "
          f"= {ratio:.1f}x [{status}]")
    assert ratio >= 3.0, f"{name[:-2]}: gemm only {ratio:.1f}x vs naive"
    checked += 1
assert checked >= 8, f"expected >= 8 naive/gemm pairs, saw {checked}"
print(f"conv bench OK ({checked} pairs, gemm >= 3x naive on all)")
EOF

echo "verify OK"
