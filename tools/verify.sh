#!/usr/bin/env bash
# Repo verification: the tier-1 build + full test suite (repeated with
# DMIS_KERNEL=naive for the conv reference backend), then an
# AddressSanitizer pass over the kernel-heavy suites (SGEMM/im2col, conv
# parity and gradchecks — where indexing bugs would scribble), a
# ThreadSanitizer pass over the concurrency-heavy suites (raylite tasks/
# actors/tune retries, comm collectives + async comm workers — repeated
# under DMIS_COMM_ALGO=tree and =hier so every schedule's rendezvous
# choreography is raced — the gradient bucketer and mirrored strategy,
# the fault injector, the telemetry registry/tracer, the segmentation
# server, and the chaos integration sweeps — including chaos_serve, the
# serving robustness gate, and chaos_grow, the elastic scale-up gate),
# where data races would live, plus an until-fail flake screen over the
# comm suites, a kill-and-restart sweep-resume smoke, then traced example
# smokes that
# check the telemetry exports are valid, non-empty JSON — including
# that the bucketed gradient sync genuinely overlaps allreduce with
# backward — and benchmark runs that regenerate BENCH_conv3d.json /
# BENCH_allreduce.json / BENCH_serve.json and assert the floors the
# optimization PRs promised (gemm vs naive conv; bucketed vs per-tensor
# gradient sync; serve worker-pool scaling and zero shed at nominal
# load).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== tier-1 again under the naive conv backend =="
DMIS_KERNEL=naive ./build/tests/nn_test --gtest_brief=1

echo "== flake screen: comm suites repeated until-fail 3x =="
# The collective schedules are lockstep thread choreography; a race or
# an order-dependent rendezvous tends to show up as a rare flake, not a
# deterministic failure. Repeat the comm-heavy suites until-fail.
(cd build && ctest --repeat until-fail:3 -j"${JOBS}" \
  -R '^(comm_test|chaos_dp_test|chaos_grow_test)\.' | tail -3)

echo "== asan: gemm/im2col + conv parity suites =="
cmake -B build-asan -S . -DDMIS_SANITIZE=address >/dev/null
cmake --build build-asan -j"${JOBS}" --target tensor_test nn_test
./build-asan/tests/tensor_test --gtest_filter='Shapes/*:Sgemm*:Geometries/*:Im2col*'
for backend in gemm naive; do
  echo "-- asan: nn_test conv suites (DMIS_KERNEL=${backend})"
  DMIS_KERNEL="${backend}" ./build-asan/tests/nn_test \
    --gtest_filter='ConvParity*:Grid/*:Conv3d*:ConvTranspose3d*:Sweep/*'
done

echo "== tsan: raylite + comm + train + obs suites =="
cmake -B build-tsan -S . -DDMIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" \
  --target raylite_test comm_test train_test common_test obs_test \
           serve_test chaos_test chaos_dp_test chaos_grow_test \
           chaos_serve_test
for t in raylite_test comm_test train_test common_test obs_test \
         serve_test chaos_test; do
  echo "-- tsan: ${t}"
  ./build-tsan/tests/"${t}"
done

echo "== tsan: comm + chaos_dp under the tree and hier algorithms =="
# DMIS_COMM_ALGO swaps the all-reduce schedule under every existing
# comm/chaos scenario (the env override wins over GroupOptions by
# design, and each suite's references run under the same override), so
# rank loss, timeouts and aborts are exercised under the tree and
# hierarchical schedules — race-free under TSan.
for algo_env in "DMIS_COMM_ALGO=tree" \
                "DMIS_COMM_ALGO=hier DMIS_COMM_RANKS_PER_NODE=2"; do
  for t in comm_test chaos_dp_test; do
    echo "-- tsan: ${t} under ${algo_env}"
    env ${algo_env} ./build-tsan/tests/"${t}" --gtest_brief=1
  done
done

echo "== tsan: gradient compression parity (fp16 / topk) =="
# DMIS_COMPRESS swaps the gradient-sync wire codec under the same
# scenarios: the fp16 wire and the top-k error-feedback path must keep
# every elastic-recovery gate green — including the exact-equivalence
# chaos tests, which only pass if an aborted step's residual mutations
# are rolled back before the retry — across the ring, tree and
# hierarchical schedules, race-free under TSan. comm_test rides along
# once per mode (codec kernels + env resolution under the override).
for compress_env in "DMIS_COMPRESS=fp16" \
                    "DMIS_COMPRESS=topk DMIS_TOPK_RATIO=0.25"; do
  echo "-- tsan: comm_test under ${compress_env}"
  env ${compress_env} ./build-tsan/tests/comm_test --gtest_brief=1
  for algo_env in "" "DMIS_COMM_ALGO=tree" \
                  "DMIS_COMM_ALGO=hier DMIS_COMM_RANKS_PER_NODE=2"; do
    echo "-- tsan: chaos_dp_test under ${compress_env} ${algo_env:-ring}"
    env ${compress_env} ${algo_env} ./build-tsan/tests/chaos_dp_test \
      --gtest_brief=1
  done
done

echo "== tsan chaos: elastic data-parallel recovery under rank loss =="
# The acceptance gate of the failure-semantics PR: a 4-rank mirrored run
# loses one rank mid-step (crashed and hung variants) and must either
# abort with a typed CommError within the deadline or shrink to the
# survivors, restore the step-consistent checkpoint, and match the
# fault-free smaller run — deadlock- and race-free under TSan.
./build-tsan/tests/chaos_dp_test

echo "== tsan chaos: elastic scale-up under kill + rejoin =="
# The acceptance gate of the elastic scale-up PR: a 4-rank mirrored run
# loses rank 3 mid-epoch with its rejoin pre-scheduled (the FaultInjector
# restart action), continues shrunk to 3, re-admits the rank at the next
# epoch boundary through the lease-based membership protocol, and must
# finish at world 4 matching the fault-free 4-rank run — across every
# all-reduce schedule and wire codec, including the kill-rejoin-kill
# double fault and the shape-mismatched joiner (typed rejection, no
# deadlock) — race-free under TSan. The join/admit/commit handshake is
# real cross-thread choreography (parked joiner agents vs the driver's
# epoch boundary), exactly where TSan earns its keep.
./build-tsan/tests/chaos_grow_test

echo "== tsan chaos: segmentation serving under crashes, hangs, delays =="
# The acceptance gate of the robust-serving PR: a 4-worker server is
# driven through a request mix while workers crash on pickup, one worker
# hangs (with auto-release) and inference stalls; every request must
# resolve to a result or a typed ServeError within its deadline, the
# survivors' masks must be bitwise identical to the fault-free run, and
# the server must keep serving once the faults stop — all TSan-clean.
./build-tsan/tests/chaos_serve_test

echo "== tsan chaos: flight recorder on an injected collective fault =="
# The acceptance gate of the observability PR: a rank hit by an injected
# comm.collective fault aborts the group, and the crash dump written to
# DMIS_FLIGHT_DIR must contain the failing collective's span and the
# per-rank health table with the dead rank — race-free under TSan.
./build-tsan/tests/obs_test --gtest_filter='FlightRecorder*'

cmake -B build-ubsan -S . -DDMIS_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"${JOBS}" \
  --target comm_test train_test common_test chaos_dp_test
for t in comm_test train_test common_test chaos_dp_test; do
  echo "-- ubsan: ${t}"
  ./build-ubsan/tests/"${t}"
done

echo "== telemetry: traced example smokes =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
DMIS_TRACE="${SMOKE_DIR}/tune_trace.json" \
  DMIS_METRICS="${SMOKE_DIR}/tune_metrics.jsonl" \
  ./build/examples/tune_search 2 >/dev/null
# A small bucket cap makes the smoke's toy model span several buckets,
# so allreduces genuinely launch mid-backward (the overlap assertion
# below); the default 1 MiB cap would fit the whole model in one.
DMIS_TRACE="${SMOKE_DIR}/dp_trace.json" \
  DMIS_BUCKET_BYTES=16384 \
  ./build/examples/data_parallel 2 >/dev/null
python3 - "${SMOKE_DIR}" <<'EOF'
import json, sys

smoke_dir = sys.argv[1]

def load_events(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    assert events, f"{path}: trace has no events"
    return events

def span_names(path):
    events = load_events(path)
    return len(events), {e["name"] for e in events}

n_tune, tune = span_names(f"{smoke_dir}/tune_trace.json")
for required in ("tune.trial", "tune.queue_wait", "train.step",
                 "train.forward", "data.load"):
    assert required in tune, f"tune trace missing {required!r}: {sorted(tune)}"

dp_events = load_events(f"{smoke_dir}/dp_trace.json")
n_dp, dp = len(dp_events), {e["name"] for e in dp_events}
for required in ("comm.allreduce", "comm.allreduce.reduce_scatter",
                 "comm.allreduce.all_gather", "train.backward",
                 "train.grad_sync.overlap", "train.grad_sync.wait"):
    assert required in dp, f"dp trace missing {required!r}: {sorted(dp)}"

# The point of the bucketed path: gradient allreduce overlaps backward.
# (a) the bucketer's own overlap span must cover real time — the first
# bucket launched before backward finished;
overlaps = [e for e in dp_events if e["name"] == "train.grad_sync.overlap"]
assert any(e["dur"] > 0 for e in overlaps), \
    f"no overlap between allreduce launch and backward: {overlaps}"
# (b) some ring allreduce span must intersect a backward span in wall
# time (the rings run on comm workers while replicas back-propagate).
backwards = [(e["ts"], e["ts"] + e["dur"]) for e in dp_events
             if e["name"] == "train.backward"]
rings = [(e["ts"], e["ts"] + e["dur"]) for e in dp_events
         if e["name"] == "comm.allreduce"]
assert any(r0 < b1 and b0 < r1
           for (r0, r1) in rings for (b0, b1) in backwards), \
    "no comm.allreduce span overlaps any train.backward span"

with open(f"{smoke_dir}/tune_metrics.jsonl") as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert lines, "metrics dump is empty"
counters = {m["name"]: m["value"] for m in lines if m["type"] == "counter"}
assert counters.get("tune.trials_completed", 0) > 0, counters

print(f"tune trace OK ({n_tune} events), dp trace OK ({n_dp} events), "
      f"metrics OK ({len(lines)} instruments)")
EOF

echo "== telemetry: live /metrics scrape during a tune sweep =="
# The observability PR's acceptance gate: a sweep runs with the embedded
# exporter up; a scraper polls /metrics and /healthz mid-run, validates
# the Prometheus exposition (TYPE lines, histogram bucket cumulativity,
# +Inf == _count), and the *last* scrape — taken in the DMIS_OBS_LINGER_MS
# window after all counters settled — must reconcile exactly with the
# tune.trials.* counters in the final JSONL dump. dmis_top must also be
# able to render a live table from the same endpoint.
OBS_PORT="$(( (RANDOM % 20000) + 20000 ))"
# DMIS_FLIGHT_DIR is armed through the environment on purpose: the env
# bootstrap at static-init time is a distinct code path from the
# configure() calls the unit tests use, and it once recursed into a
# still-initializing instance().
DMIS_OBS_PORT="${OBS_PORT}" DMIS_OBS_LINGER_MS=4000 \
  DMIS_METRICS="${SMOKE_DIR}/live_metrics.jsonl" \
  DMIS_FLIGHT_DIR="${SMOKE_DIR}/flight" \
  ./build/examples/tune_search 2 >/dev/null &
TUNE_PID=$!
for _ in $(seq 1 100); do  # wait for the exporter to come up
  if ./build/tools/dmis_top --port "${OBS_PORT}" --once >"${SMOKE_DIR}/top.txt" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
grep -q "trials" "${SMOKE_DIR}/top.txt" \
  || { echo "dmis_top produced no live table"; cat "${SMOKE_DIR}/top.txt"; exit 1; }
kill -USR1 "${TUNE_PID}"  # on-demand flight dump from the live sweep
python3 - "${OBS_PORT}" "${SMOKE_DIR}" <<'EOF'
import json, sys, time, urllib.error, urllib.request

port, smoke_dir = sys.argv[1], sys.argv[2]
last_scrape = None
health_ok = False
deadline = time.time() + 180
while time.time() < deadline:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=2) as r:
            last_scrape = r.read().decode()
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2) as r:
            body = json.loads(r.read().decode())
            assert body["status"] in ("ok", "degraded"), body
            health_ok = True
    except (urllib.error.URLError, ConnectionError, OSError):
        if last_scrape is not None:
            break  # exporter gone after the linger window: run finished
    time.sleep(0.1)
else:
    sys.exit("tune_search did not finish within the scrape deadline")
assert last_scrape, "never managed to scrape /metrics"
assert health_ok, "never managed to scrape /healthz"
with open(f"{smoke_dir}/final_scrape.prom", "w") as f:
    f.write(last_scrape)

# Prometheus text-format validation on the final scrape.
families = {}
samples = []
for line in last_scrape.splitlines():
    if not line:
        continue
    if line.startswith("# TYPE "):
        _, _, fam, kind = line.split(" ")
        assert fam not in families, f"duplicate TYPE for {fam}"
        families[fam] = kind
        continue
    assert not line.startswith("#"), f"unexpected comment: {line}"
    name = line.split("{")[0].split(" ")[0]
    value = line.rsplit(" ", 1)[1]
    float(value.replace("+Inf", "inf"))  # every sample value parses
    samples.append((name, line))
assert families, "no TYPE lines in scrape"
for name, line in samples:
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            base = name[: -len(suffix)]
    assert base in families, f"sample without TYPE: {line}"

# Histogram conformance: buckets cumulative and +Inf == _count,
# per label set.
hist_fams = [f for f, kind in families.items() if kind == "histogram"]
assert hist_fams, "no histogram families in scrape"
for fam in hist_fams:
    series = {}
    counts = {}
    for name, line in samples:
        if name == f"{fam}_bucket":
            labels = line[line.index("{") + 1:line.rindex("}")]
            le = [kv for kv in labels.split(",") if kv.startswith('le="')][0]
            rank = ",".join(kv for kv in labels.split(",")
                            if not kv.startswith('le="'))
            series.setdefault(rank, []).append(
                (le[4:-1], int(line.rsplit(" ", 1)[1])))
        elif name == f"{fam}_count":
            rank = (line[line.index("{") + 1:line.rindex("}")]
                    if "{" in line.split(" ")[0] else "")
            counts[rank] = int(line.rsplit(" ", 1)[1])
    for rank, buckets in series.items():
        values = [v for _, v in buckets]  # rendered in ascending-le order
        assert values == sorted(values), f"{fam}{{{rank}}} not cumulative"
        assert buckets[-1][0] == "+Inf", f"{fam}{{{rank}}} missing +Inf"
        assert buckets[-1][1] == counts[rank], \
            f"{fam}{{{rank}}}: +Inf {buckets[-1][1]} != _count {counts[rank]}"

# Exact reconciliation: the live scrape's tune counters against the
# final JSONL dump (both written after the sweep settled).
scraped = {name: int(line.rsplit(" ", 1)[1]) for name, line in samples
           if name.startswith("dmis_tune_")}
with open(f"{smoke_dir}/live_metrics.jsonl") as f:
    dumped = {m["name"]: m["value"] for m in map(json.loads, f)
              if m["type"] == "counter" and m["name"].startswith("tune.")}
assert dumped, "JSONL dump has no tune counters"
for name, value in dumped.items():
    prom = "dmis_" + name.replace(".", "_")
    assert prom in scraped, f"scrape missing {prom}"
    assert scraped[prom] == value, \
        f"{prom}: scrape {scraped[prom]} != JSONL {value}"
completed = dumped.get("tune.trials_completed", 0)
assert completed == 6, \
    f"tune_search runs a 3x2 grid; completed {completed} trials"

print(f"live scrape OK ({len(samples)} samples, {len(families)} families, "
      f"{len(hist_fams)} histograms conformant, "
      f"{len(dumped)} tune counters reconciled, {completed} trials)")
EOF
wait "${TUNE_PID}"
grep -q '"trigger":"signal.SIGUSR1"' "${SMOKE_DIR}"/flight/flight_*.json \
  || { echo "SIGUSR1 produced no flight dump"; ls -l "${SMOKE_DIR}/flight" || true; exit 1; }

echo "== sweep resume: kill mid-sweep, restart, same best trial =="
# The sweep-ledger gate: a 6-trial sweep is killed (rc 42) once 3 trials
# have reached the durable ledger; the restarted sweep must adopt every
# ledgered trial without re-running it (>= 3 — the fast sequential
# trials can land one more line in the instant between the ledger poll
# and the _exit), finish the rest, and land on the same best trial and
# metric as an uninterrupted sweep over the same grid.
SWEEP_DIR="${SMOKE_DIR}/sweep_resume"
rc=0
./build/examples/sweep_resume "${SWEEP_DIR}" 3 >/dev/null || rc=$?
[ "${rc}" -eq 42 ] || { echo "first run: expected crash rc 42, got ${rc}"; exit 1; }
resumed="$(./build/examples/sweep_resume "${SWEEP_DIR}" | tail -1)"
uninterrupted="$(./build/examples/sweep_resume "${SWEEP_DIR}_ref" | tail -1)"
echo "resumed:       ${resumed}"
echo "uninterrupted: ${uninterrupted}"
adopted="$(printf '%s\n' "${resumed}" | sed 's/.*adopted=\([0-9]*\).*/\1/')"
[ "${adopted:-0}" -ge 3 ] \
  || { echo "restart adopted only ${adopted} of the >= 3 ledgered trials"; exit 1; }
# Same completed count, best trial and best metric as the clean run
# (the adopted= field legitimately differs: >= 3 vs 0).
strip_adopted() { printf '%s\n' "$1" | sed 's/adopted=[0-9]* //'; }
[ "$(strip_adopted "${resumed}")" = "$(strip_adopted "${uninterrupted}")" ] \
  || { echo "resumed sweep diverged from the uninterrupted run"; exit 1; }

echo "== bench: conv kernels, gemm vs naive =="
./build/bench/bench_conv3d --benchmark_filter='Conv' \
  --benchmark_min_time=0.1 \
  --benchmark_out=BENCH_conv3d.json --benchmark_out_format=json \
  >/dev/null
python3 - BENCH_conv3d.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
times = {b["name"]: b["real_time"] for b in bench["benchmarks"]}

# Benchmark names are <case>/<channels>/<backend> with backend 0=naive,
# 1=gemm. The gemm path must hold a conservative floor of its measured
# (5-30x) advantage; 3x catches a real regression without flaking.
checked = 0
for name, naive in sorted(times.items()):
    if not name.endswith("/0"):
        continue
    gemm = times[name[:-2] + "/1"]
    ratio = naive / gemm
    status = "OK" if ratio >= 3.0 else "TOO SLOW"
    print(f"{name[:-2]}: naive {naive:.3f}ms / gemm {gemm:.3f}ms "
          f"= {ratio:.1f}x [{status}]")
    assert ratio >= 3.0, f"{name[:-2]}: gemm only {ratio:.1f}x vs naive"
    checked += 1
assert checked >= 8, f"expected >= 8 naive/gemm pairs, saw {checked}"
print(f"conv bench OK ({checked} pairs, gemm >= 3x naive on all)")
EOF

echo "== bench: gradient sync + collective algorithms =="
# Nine randomly interleaved repetitions, median-of-reps in the parser:
# the auto-vs-best-fixed gate below compares nearly identical workloads
# on a timesliced single-core host whose per-rep times scatter with
# scheduler noise in both directions (a whole repetition can run 20%
# fast or slow), so a mean, a minimum, or few repetitions all flake;
# interleaving spreads every benchmark's repetitions across the whole
# run and the median is robust to wild single repetitions.
./build/bench/bench_allreduce \
  --benchmark_filter='GradSync|RingAllreduce|NaiveReduceBroadcast|AllReduceAlgo' \
  --benchmark_min_time=0.1 \
  --benchmark_repetitions=9 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_out=BENCH_allreduce.json --benchmark_out_format=json \
  >/dev/null
python3 - BENCH_allreduce.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
reps = {}
wire = {}
for b in bench["benchmarks"]:
    if b.get("run_type") != "aggregate":
        reps.setdefault(b["name"], []).append(b["real_time"])
        if "wire_reduction" in b:
            wire.setdefault(b["name"], []).append(b["wire_reduction"])
times = {name: sorted(values)[len(values) // 2]
         for name, values in reps.items()}
wire = {name: sorted(values)[len(values) // 2]
        for name, values in wire.items()}

# The bucketed overlapped gradient sync must beat the legacy blocking
# per-tensor path by >= 1.5x on the U-Net gradient payload (measured
# 1.7-2.4x; the floor catches a real regression without flaking).
for ranks in (2, 4):
    per_tensor = times[f"BM_GradSyncPerTensor/{ranks}"]
    bucketed = times[f"BM_GradSyncBucketed/{ranks}"]
    ratio = per_tensor / bucketed
    status = "OK" if ratio >= 1.5 else "TOO SLOW"
    print(f"ranks={ranks}: per-tensor {per_tensor:.3f}ms / bucketed "
          f"{bucketed:.3f}ms = {ratio:.2f}x [{status}]")
    assert ratio >= 1.5, \
        f"ranks={ranks}: bucketed only {ratio:.2f}x vs per-tensor"
print("gradient sync bench OK (bucketed >= 1.5x per-tensor at 2 and 4 ranks)")

# The tuner gate: `auto` (algorithm 3) must land within 15% of the
# best fixed algorithm at every measured payload. A genuinely wrong
# pick costs >= 25% here (hier anywhere, ring-vs-tree at small sizes;
# where ring and tree are within noise of each other, either pick is
# right), while medians of *identical* schedules still wander ~10% on
# this single-core host — 15% separates mispick from measurement. The
# committed BENCH_allreduce.json additionally demonstrates auto within
# 5% of best on a representative quiet run.
algos = {0: "ring", 1: "tree", 2: "hier", 3: "auto"}
for payload in (1 << 12, 1 << 16, 1 << 20):
    fixed = {algos[a]:
             times[f"BM_AllReduceAlgo/{a}/{payload}/real_time/threads:4"]
             for a in (0, 1, 2)}
    auto = times[f"BM_AllReduceAlgo/3/{payload}/real_time/threads:4"]
    best_name = min(fixed, key=fixed.get)
    best = fixed[best_name]
    ratio = auto / best
    status = "OK" if ratio <= 1.15 else "TOO SLOW"
    detail = " ".join(f"{n} {t:.3f}ms" for n, t in fixed.items())
    print(f"payload={payload}: {detail} | auto {auto:.3f}ms = "
          f"{ratio:.3f}x of best ({best_name}) [{status}]")
    assert ratio <= 1.15, \
        f"payload={payload}: auto {ratio:.3f}x of best fixed ({best_name})"
print("collective algorithm bench OK (auto within 15% of best at all sizes)")

# The compression gate: on the packed-bucket gradient payload (many
# 32 KiB tensors, 4 ranks) the fp16 wire must (a) measurably halve the
# bytes peers pull off each rank's registered buffer — wire_reduction
# is computed from the comm.allreduce_bytes delta, floor 1.8x against
# an exact 2x — and (b) be no slower end-to-end than the uncompressed
# path (measured ~1.4x faster: the codec rides the pack/unpack passes
# the bucketed path already pays while the collective moves half the
# bytes; 1.0 is a regression floor, not the expectation). Top-k is
# reported but not floor-gated on time: its win is bytes, not latency,
# at these payloads.
for payload in (1 << 18, 1 << 20):  # floats/rank: 1 MiB and 4 MiB
    none_t = times[f"BM_GradSyncCompress/0/{payload}"]
    fp16_t = times[f"BM_GradSyncCompress/1/{payload}"]
    fp16_w = wire[f"BM_GradSyncCompress/1/{payload}"]
    topk_w = wire[f"BM_GradSyncCompress/2/{payload}"]
    speed = none_t / fp16_t
    status = "OK" if fp16_w >= 1.8 and speed >= 1.0 else "FAIL"
    print(f"payload={payload}: none {none_t:.3f}ms fp16 {fp16_t:.3f}ms "
          f"({speed:.2f}x) wire fp16 {fp16_w:.2f}x topk {topk_w:.2f}x "
          f"[{status}]")
    assert fp16_w >= 1.8, \
        f"payload={payload}: fp16 wire reduction only {fp16_w:.2f}x"
    assert speed >= 1.0, \
        f"payload={payload}: fp16 sync {speed:.2f}x of uncompressed"
print("compression bench OK (fp16 >= 1.8x fewer wire bytes, not slower)")
EOF

echo "== bench: serving throughput across worker-pool sizes =="
./build/bench/bench_serve \
  --benchmark_min_time=0.2 \
  --benchmark_out=BENCH_serve.json --benchmark_out_format=json \
  >/dev/null
CORES="$(nproc)" python3 - BENCH_serve.json <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
by_name = {b["name"]: b for b in bench["benchmarks"]}

def row(workers):
    return by_name[f"BM_ServeThroughput/{workers}/real_time"]

# Nominal load (queue sized for the whole batch, no deadlines) must
# never shed: shedding here means admission control is broken.
for workers in (1, 2, 4):
    shed = row(workers)["shed"]
    assert shed == 0, f"{workers}-worker nominal load shed {shed} requests"

# Worker-pool scaling floor for 4 workers vs 1. The 2.5x SLO assumes
# >= 4 real cores; on the smaller CI hosts the pool cannot scale past
# the core count, so the floor degrades to "does not collapse":
#   >= 4 cores: 2.5x    2-3 cores: 1.3x    1 core: 0.7x
cores = int(os.environ.get("CORES", "1"))
floor = 2.5 if cores >= 4 else (1.3 if cores >= 2 else 0.7)
one = row(1)["items_per_second"]
four = row(4)["items_per_second"]
ratio = four / one
status = "OK" if ratio >= floor else "TOO SLOW"
print(f"serve throughput: 1w {one:.0f}/s, 4w {four:.0f}/s = {ratio:.2f}x "
      f"(floor {floor}x on {cores} cores) [{status}]")
assert ratio >= floor, \
    f"4-worker throughput only {ratio:.2f}x of 1-worker (floor {floor}x)"
for workers in (1, 2, 4):
    r = row(workers)
    print(f"  {workers}w: {r['items_per_second']:.0f} vol/s, "
          f"p50 {r['p50_ms']:.2f}ms, p99 {r['p99_ms']:.2f}ms")
print("serve bench OK (zero shed at nominal load, scaling floor held)")
EOF

echo "verify OK"
