#!/usr/bin/env bash
# Repo verification: the tier-1 build + full test suite, then a
# ThreadSanitizer pass over the concurrency-heavy suites (raylite tasks/
# actors/tune retries, comm ring collectives, the fault injector, and
# the chaos integration sweep), where data races would live.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== tsan: raylite + comm suites =="
cmake -B build-tsan -S . -DDMIS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" \
  --target raylite_test comm_test common_test chaos_test
for t in raylite_test comm_test common_test chaos_test; do
  echo "-- tsan: ${t}"
  ./build-tsan/tests/"${t}"
done

echo "verify OK"
